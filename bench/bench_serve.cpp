// Serving-runtime throughput/latency bench: sustained requests/sec and
// p50/p99 end-to-end latency vs. worker count, for both fidelity backends.
//
// Plain main (like bench_table1): runnable without google-benchmark.
//
//   ./build/bench/bench_serve
//
// The behavioural backend is the production path and must show throughput
// scaling with workers (the ISSUE-2 acceptance criterion); the tiled
// electrical backend is ~3 orders of magnitude slower per pass and is
// measured at a smaller request count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/models.h"
#include "data/strokes.h"
#include "serve/runtime.h"

namespace {

using namespace neuspin;

double percentile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) {
    return 0.0;
  }
  std::sort(sorted_values.begin(), sorted_values.end());
  const double rank = q * static_cast<double>(sorted_values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

struct RunResult {
  double requests_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  double energy_uj_per_req = 0.0;
};

RunResult run_load(const core::BuiltModel& model, serve::RuntimeConfig config,
                   const nn::Dataset& data, std::size_t requests) {
  serve::Runtime runtime(model, config);
  std::vector<std::vector<float>> rows;
  rows.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const nn::Tensor x = data.batch(i, i + 1).first;
    rows.emplace_back(x.data().begin(), x.data().end());
  }

  // Closed loop with a bounded in-flight window: latencies then measure
  // steady-state queue + compute time, not the depth of a pre-submitted
  // backlog.
  constexpr std::size_t kWindow = 64;
  std::deque<std::future<serve::ServedPrediction>> in_flight;
  std::vector<double> latencies;
  latencies.reserve(requests);
  double energy_pj = 0.0;
  const auto harvest = [&](std::future<serve::ServedPrediction> f) {
    const serve::ServedPrediction p = f.get();
    latencies.push_back(p.total_latency_us);
    energy_pj += p.energy_pj;
  };
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    in_flight.push_back(runtime.submit(rows[i % rows.size()]));
    if (in_flight.size() >= kWindow) {
      harvest(std::move(in_flight.front()));
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    harvest(std::move(in_flight.front()));
    in_flight.pop_front();
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - begin).count();

  RunResult result;
  result.requests_per_sec = static_cast<double>(requests) / seconds;
  result.p50_us = percentile(latencies, 0.50);
  result.p99_us = percentile(latencies, 0.99);
  result.mean_batch = runtime.stats().mean_batch_size;
  result.energy_uj_per_req =
      energy_pj * 1e-6 / static_cast<double>(requests);
  return result;
}

void sweep_backend(const core::BuiltModel& model, const nn::Dataset& data,
                   serve::Backend backend, std::size_t mc_samples,
                   std::size_t requests,
                   const std::vector<std::size_t>& worker_counts) {
  std::printf("\n%s backend: T=%zu MC passes, %zu requests\n",
              serve::backend_name(backend).c_str(), mc_samples, requests);
  std::printf("%8s %12s %12s %12s %11s %14s\n", "workers", "req/s", "p50 (us)",
              "p99 (us)", "avg batch", "energy/req uJ");
  for (std::size_t workers : worker_counts) {
    serve::RuntimeConfig config;
    config.backend = backend;
    config.workers = workers;
    config.mc_samples = mc_samples;
    config.spindrop_p = backend == serve::Backend::kTiled ? 0.15 : 0.0;
    config.batcher.max_batch = 16;
    config.batcher.max_linger = std::chrono::microseconds(100);
    const RunResult r = run_load(model, config, data, requests);
    std::printf("%8zu %12.0f %12.0f %12.0f %11.1f %14.3f\n", workers,
                r.requests_per_sec, r.p50_us, r.p99_us, r.mean_batch,
                r.energy_uj_per_req);
  }
}

}  // namespace

int main() {
  bench::banner("bench_serve",
                "serving runtime: sustained req/s and tail latency vs. workers");

  data::StrokeConfig sc;
  sc.samples_per_class = 10;  // 100 distinct request payloads
  const nn::Dataset data =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 3));

  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.15;
  const core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);

  // Sweep 1..max(4, hardware) workers in powers of two. On machines with
  // fewer cores the larger counts run oversubscribed — throughput then
  // plateaus instead of scaling, but results stay bitwise identical.
  const std::size_t hw = std::max<std::size_t>(
      4, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts = {1};
  for (std::size_t w = 2; w <= hw; w *= 2) {
    worker_counts.push_back(w);
  }

  sweep_backend(model, data, serve::Backend::kBehavioral, /*mc_samples=*/8,
                /*requests=*/1024, worker_counts);

  std::vector<std::size_t> tiled_counts;
  for (std::size_t w : worker_counts) {
    if (w <= 4) {
      tiled_counts.push_back(w);
    }
  }
  sweep_backend(model, data, serve::Backend::kTiled, /*mc_samples=*/4,
                /*requests=*/48, tiled_counts);

  std::printf("\nNote: predictions are bitwise identical across every row of\n"
              "these sweeps — worker count and batching change only latency.\n");
  return 0;
}
