// Ablations of the design choices DESIGN.md §5 calls out:
//   A1  ADC bit-width vs inference accuracy (the §II-D quantization-error
//       discussion)
//   A2  variability sigma sweep on tile-level inference ("stochasticity as
//       a feature vs a foe")
//   A3  adaptive vs fixed scale-dropout probability
//   A4  SpinBayes instance count N vs accuracy/uncertainty
//   A5  dropout granularity: neuron vs feature-map vs layer (module count
//       vs predictive quality)
//   A6  data retention: accuracy decay of a stored network over idle time
//       as thermally weak devices relax (paper takeaway 4)
//   A7  MC-DropConnect: the per-weight design point the paper's §II-D
//       scalability argument warns about
#include <cstdio>

#include "bench_util.h"
#include "core/dropconnect.h"
#include "core/hw_model.h"
#include "device/retention.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/ood.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  bench::banner("bench_ablations", "design-choice ablations (DESIGN.md §5)");

  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train_img =
      data::standardize_per_sample(data::make_stroke_digits(sc, 91));
  sc.samples_per_class = 40;
  const nn::Dataset test_img = data::make_stroke_digits(sc, 92);
  const nn::Dataset train = data::flatten_dataset(train_img);
  const nn::Dataset test =
      data::flatten_dataset(data::standardize_per_sample(test_img));

  // ---------- A1: ADC resolution vs accuracy ----------
  std::printf("A1. ADC resolution vs accuracy (behavioural quantization):\n");
  std::printf("    %-10s %10s\n", "levels", "acc[%]");
  for (std::size_t levels : {8u, 16u, 64u, 256u, 0u}) {
    core::ModelConfig mc;
    mc.method = core::Method::kDeterministic;
    mc.hw.enabled = true;
    mc.hw.quant_levels = levels;  // 0 = ideal read-out
    core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
    core::FitConfig fc;
    fc.epochs = 6;
    (void)core::fit(model, train, fc);
    const float acc = core::evaluate(model, test, 1).accuracy;
    if (levels == 0) {
      std::printf("    %-10s %10.2f\n", "ideal", 100.0f * acc);
    } else {
      std::printf("    %-10zu %10.2f\n", levels, 100.0f * acc);
    }
  }

  // ---------- A2: variability sigma on the exact tile path ----------
  std::printf("\nA2. device variability vs tile-level accuracy (TiledMlp):\n");
  std::printf("    %-10s %10s\n", "sigma", "acc[%]");
  core::ModelConfig base_cfg;
  base_cfg.method = core::Method::kDeterministic;
  core::BuiltModel software = core::make_binary_mlp(base_cfg, 256, {64}, 10);
  core::FitConfig fit_cfg;
  fit_cfg.epochs = 6;
  (void)core::fit(software, train, fit_cfg);
  for (double sigma : {0.0, 0.05, 0.10, 0.20}) {
    xbar::TileConfig tc;
    tc.variability.resistance_sigma = sigma;
    core::TiledMlp hw(software.net, tc, 93);
    std::size_t correct = 0;
    const std::size_t probe = 200;
    auto [inputs, labels] = test.batch(0, probe);
    const nn::Tensor logits = hw.forward(inputs);
    for (std::size_t i = 0; i < probe; ++i) {
      if (nn::argmax_row(logits, i) == labels[i]) {
        ++correct;
      }
    }
    std::printf("    %-10.2f %10.2f\n", sigma,
                100.0 * static_cast<double>(correct) / static_cast<double>(probe));
  }

  // ---------- A3: adaptive vs fixed scale-dropout p ----------
  std::printf("\nA3. scale-dropout probability rule:\n");
  std::printf("    %-12s %10s %10s\n", "rule", "acc[%]", "NLL");
  for (bool adaptive : {true, false}) {
    core::ModelConfig mc;
    mc.method = core::Method::kSpinScaleDrop;
    mc.adaptive_p = adaptive;
    mc.dropout_p = 0.15;  // the fixed alternative
    core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
    core::FitConfig fc;
    fc.epochs = 6;
    (void)core::fit(model, train, fc);
    const auto ev = core::evaluate(model, test, 20);
    std::printf("    %-12s %10.2f %10.3f\n", adaptive ? "adaptive" : "fixed",
                100.0f * ev.accuracy, ev.nll);
  }

  // ---------- A4: SpinBayes instance count x cell resolution ----------
  // Instance diversity is gated by the multi-level cell: with a coarse
  // grid, most posterior samples quantize to the same level and the N
  // crossbars store near-identical scales.
  std::printf("\nA4. SpinBayes crossbar instances N x cell levels vs accuracy/OOD:\n");
  std::printf("    %-6s %-8s %10s %10s %12s\n", "N", "levels", "acc[%]", "NLL",
              "ood AUROC");
  const nn::Dataset ood = data::standardize_per_sample(
      data::make_ood(test_img, data::OodKind::kUniformNoise, 150, 94));
  const nn::Dataset ood_flat = data::flatten_dataset(ood);
  for (std::size_t n : {2u, 8u, 16u}) {
    for (std::size_t levels : {4u, 16u}) {
      core::ModelConfig mc;
      mc.method = core::Method::kSpinBayes;
      core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
      core::FitConfig fc;
      fc.epochs = 6;
      fc.kl_weight = 1e-4f;
      (void)core::fit(model, train, fc);
      core::SpinBayesConfig conv;
      conv.instances = n;
      conv.quant_levels = levels;
      core::convert_to_spinbayes(model, conv);
      const auto ev = core::evaluate(model, test, 20);
      const auto ood_res = core::evaluate_ood(model, test, ood_flat, 20);
      std::printf("    %-6zu %-8zu %10.2f %10.3f %12.3f\n", n, levels,
                  100.0f * ev.accuracy, ev.nll, ood_res.auroc);
    }
  }

  // ---------- A5: dropout granularity ----------
  std::printf("\nA5. dropout granularity (CNN): modules vs predictive quality:\n");
  std::printf("    %-14s %10s %10s %10s\n", "granularity", "modules", "acc[%]", "NLL");
  for (auto method : {core::Method::kSpinDrop, core::Method::kSpatialSpinDrop,
                      core::Method::kSpinScaleDrop}) {
    core::ModelConfig mc;
    mc.method = method;
    mc.dropout_p = 0.1;
    core::BuiltModel model = core::make_binary_cnn(mc);
    core::FitConfig fc;
    fc.epochs = 5;
    (void)core::fit(model, train_img, fc);
    const auto ev =
        core::evaluate(model, data::standardize_per_sample(test_img), 20);
    std::printf("    %-14s %10zu %10.2f %10.3f\n", core::method_name(method).c_str(),
                core::dropout_module_count(model.arch, method), 100.0f * ev.accuracy,
                ev.nll);
  }

  // ---------- A6: retention drift ----------
  // A stored binary network relaxes thermally: each MTJ flips with the
  // Neel-Brown probability of its (variation-shifted) Delta. Flips map to
  // sign errors on the stored weights.
  std::printf("\nA6. retention: accuracy of a stored network over idle time\n");
  std::printf("    (device Delta = 30, i.e. a thermally weak low-power corner)\n");
  std::printf("    %-14s %14s %10s\n", "idle time", "flip prob", "acc[%]");
  device::MtjParams weak;
  weak.delta = 30.0;
  const device::RetentionModel retention(weak);
  for (double seconds : {0.0, 1e3, 1e5, 3e5, 1e6}) {
    core::ModelConfig mc;
    mc.method = core::Method::kDeterministic;
    core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
    core::FitConfig fc;
    fc.epochs = 6;
    (void)core::fit(model, train, fc);
    const double p_flip = retention.flip_probability(seconds);
    if (p_flip > 0.0) {
      (void)core::inject_weight_defects(model.net, static_cast<float>(p_flip), 95);
    }
    const float acc = core::evaluate(model, test, 1).accuracy;
    std::printf("    %-14.0f %14.4f %10.2f\n", seconds, p_flip, 100.0f * acc);
  }

  // ---------- A7: MC-DropConnect cost ----------
  std::printf("\nA7. MC-DropConnect (per-weight dropout, paper SS II-D):\n");
  {
    std::mt19937_64 engine(96);
    energy::EnergyLedger ledger;
    core::DropConnectDense layer(256, 128, 0.2, engine, 97, &ledger);
    layer.enable_mc(true);
    nn::Tensor x({1, 256}, 1.0f);
    (void)layer.forward(x, false);
    const auto& params = energy::default_energy_params();
    std::printf("    one 256x128 layer, ONE stochastic pass: %llu RNG decisions "
                "= %.1f nJ\n",
                static_cast<unsigned long long>(
                    ledger.count(energy::Component::kRngDropoutCycle)),
                ledger.component_energy(energy::Component::kRngDropoutCycle, params) /
                    1000.0);
    std::printf("    the same layer under scale-dropout: 1 decision = %.4f nJ -> "
                "%.0fx more stochastic work per pass,\n    which is why NeuSpin's "
                "resource-aware methods exist (paper SS III).\n",
                params.rng_dropout_cycle / 1000.0,
                static_cast<double>(layer.decisions_per_pass()));
  }
  return 0;
}
