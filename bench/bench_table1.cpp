// Reproduces Table I: "Comparison of Methods" — inference accuracy and
// energy per image for the five NeuSpin methods.
//
// Protocol: every method trains the SAME binary CNN backbone (stroke-digit
// dataset, DESIGN.md substitution for the paper's image benchmarks) with
// its own Bayesian machinery, is evaluated with T=20 Monte-Carlo passes
// under behavioural hardware noise, and its energy comes from the
// architecture census under the shared component cost table.
//
// Paper reference values (µJ/image): SpinDrop 2.00 @ 91.95%,
// Spatial-SpinDrop 0.68 @ 90.34%, SpinScaleDropout 0.18 @ 90.45%,
// Bayesian Sub-Set 0.30 @ 90.62%, SpinBayes 0.26 (accuracy not reported).
#include <cstdio>

#include "bench_util.h"
#include "core/census.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/strokes.h"

namespace {

using namespace neuspin;

struct Row {
  core::Method method;
  float paper_accuracy;  ///< percent; <0 means "not reported"
  double paper_energy;   ///< uJ/image
};

}  // namespace

int main() {
  bench::banner("bench_table1", "Table I — accuracy & energy of the five methods");

  data::StrokeConfig sc;
  sc.samples_per_class = 120;
  const nn::Dataset train = data::standardize_per_sample(data::make_stroke_digits(sc, 11));
  sc.samples_per_class = 40;
  const nn::Dataset test = data::standardize_per_sample(data::make_stroke_digits(sc, 22));

  const std::vector<Row> rows = {
      {core::Method::kSpinDrop, 91.95f, 2.00},
      {core::Method::kSpatialSpinDrop, 90.34f, 0.68},
      {core::Method::kSpinScaleDrop, 90.45f, 0.18},
      {core::Method::kSubsetVi, 90.62f, 0.30},
      {core::Method::kSpinBayes, -1.0f, 0.26},
  };

  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig census_cfg;
  census_cfg.mc_passes = 20;

  std::printf("%-22s %10s %10s | %12s %12s\n", "method", "acc[%]", "paper[%]",
              "energy[uJ]", "paper[uJ]");
  for (const Row& row : rows) {
    core::ModelConfig mc;
    mc.method = row.method;
    mc.dropout_p = 0.1;
    mc.hw.enabled = true;         // behavioural CIM non-idealities at eval
    mc.hw.quant_levels = 256;     // 8-bit ADC class
    mc.hw.noise_fraction = 0.01f; // 1% read noise
    core::BuiltModel model = core::make_binary_cnn(mc);

    core::FitConfig fc;
    fc.epochs = 7;
    fc.lr = 0.01f;
    (void)core::fit(model, train, fc);
    if (row.method == core::Method::kSpinBayes) {
      core::SpinBayesConfig sb;
      sb.instances = 8;
      core::convert_to_spinbayes(model, sb);
    }
    const core::EvalResult ev = core::evaluate(model, test, census_cfg.mc_passes);

    const double energy_uj = energy::to_microjoule(
        core::inference_census(arch, row.method, census_cfg).total_energy());
    if (row.paper_accuracy > 0.0f) {
      std::printf("%-22s %10.2f %10.2f | %12.3f %12.2f\n",
                  core::method_name(row.method).c_str(), 100.0f * ev.accuracy,
                  row.paper_accuracy, energy_uj, row.paper_energy);
    } else {
      std::printf("%-22s %10.2f %10s | %12.3f %12.2f\n",
                  core::method_name(row.method).c_str(), 100.0f * ev.accuracy, "-",
                  energy_uj, row.paper_energy);
    }
  }
  std::printf("\nNotes: accuracies are measured on the stroke-digit substitute "
              "task (DESIGN.md §2);\nenergies follow from the architecture census "
              "calibrated once against the SpinDrop row.\n");
  return 0;
}
