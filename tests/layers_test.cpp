// Gradient-checked unit tests for the layer zoo.
#include <gtest/gtest.h>

#include "nn/binarize.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "test_util.h"

namespace neuspin::nn {
namespace {

using neuspin::testing::check_input_gradient;
using neuspin::testing::check_param_gradient;

std::mt19937_64 engine_for(std::uint64_t seed) { return std::mt19937_64(seed); }

TEST(Dense, ForwardMatchesManualComputation) {
  auto engine = engine_for(1);
  Dense layer(2, 2, engine);
  layer.weight() = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  layer.bias() = Tensor({2}, std::vector<float>{0.5f, -0.5f});
  Tensor x({1, 2}, std::vector<float>{1, 1});
  Tensor y = layer.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.5f);
}

TEST(Dense, GradientCheck) {
  auto engine = engine_for(2);
  Dense layer(5, 4, engine);
  Tensor x = Tensor::randn({3, 5}, 1.0f, engine);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x, 0);
  check_param_gradient(layer, x, 1);
}

TEST(Dense, RejectsWrongInputWidth) {
  auto engine = engine_for(3);
  Dense layer(5, 4, engine);
  Tensor x({2, 6});
  EXPECT_THROW(layer.forward(x, true), std::invalid_argument);
}

TEST(Conv2d, OutputShape) {
  auto engine = engine_for(4);
  Conv2d layer(3, 8, 3, 1, engine);
  Tensor x = Tensor::randn({2, 3, 7, 7}, 1.0f, engine);
  Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 7, 7}));
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  auto engine = engine_for(5);
  Conv2d layer(1, 1, 3, 1, engine);
  layer.weight().fill(0.0f);
  layer.weight().at4(0, 0, 1, 1) = 1.0f;  // delta kernel
  auto params = layer.parameters();
  params[1].value->fill(0.0f);  // zero bias
  Tensor x = Tensor::randn({1, 1, 5, 5}, 1.0f, engine);
  Tensor y = layer.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-6f);
  }
}

TEST(Conv2d, GradientCheck) {
  auto engine = engine_for(6);
  Conv2d layer(2, 3, 3, 1, engine);
  Tensor x = Tensor::randn({2, 2, 5, 5}, 1.0f, engine);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x, 0);
  check_param_gradient(layer, x, 1);
}

// -------------------------------------- direct vs. im2col equivalence ----
//
// The Algo switch pins the lowered (im2col + blocked GEMM) convolution to
// the direct per-element loop bit for bit, forward AND backward: both
// paths accumulate every output/gradient element's terms in the same
// fixed order, so serving models may default to the fast path without a
// single float changing anywhere downstream.

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, padding, batch, h, w;
};

class ConvAlgoEquivalence : public ::testing::TestWithParam<ConvCase> {};

void expect_tensors_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

TEST_P(ConvAlgoEquivalence, Conv2dForwardAndBackwardBitwise) {
  const ConvCase c = GetParam();
  auto engine = engine_for(41);
  Conv2d direct(c.in_ch, c.out_ch, c.kernel, c.padding, engine);
  direct.set_algo(Conv2d::Algo::kDirect);
  auto engine2 = engine_for(41);  // identical init
  Conv2d lowered(c.in_ch, c.out_ch, c.kernel, c.padding, engine2);
  ASSERT_EQ(lowered.algo(), Conv2d::Algo::kIm2col) << "im2col must be the default";

  const Tensor x = Tensor::randn({c.batch, c.in_ch, c.h, c.w}, 1.0f, engine);
  expect_tensors_bitwise(direct.forward(x, true), lowered.forward(x, true),
                         "forward");

  auto g_engine = engine_for(43);
  const Tensor g = Tensor::randn(
      {c.batch, c.out_ch, c.h + 2 * c.padding - c.kernel + 1,
       c.w + 2 * c.padding - c.kernel + 1},
      1.0f, g_engine);
  expect_tensors_bitwise(direct.backward(g), lowered.backward(g), "grad_input");
  const auto dp = direct.parameters();
  const auto lp = lowered.parameters();
  expect_tensors_bitwise(*dp[0].grad, *lp[0].grad, "weight_grad");
  expect_tensors_bitwise(*dp[1].grad, *lp[1].grad, "bias_grad");
}

TEST_P(ConvAlgoEquivalence, BinaryConv2dForwardAndBackwardBitwise) {
  const ConvCase c = GetParam();
  auto engine = engine_for(47);
  BinaryConv2d direct(c.in_ch, c.out_ch, c.kernel, c.padding, engine);
  direct.set_algo(Conv2d::Algo::kDirect);
  auto engine2 = engine_for(47);
  BinaryConv2d lowered(c.in_ch, c.out_ch, c.kernel, c.padding, engine2);

  // Feed sign-valued activations like the binary CNN's inner layers see.
  Tensor x = Tensor::randn({c.batch, c.in_ch, c.h, c.w}, 1.0f, engine);
  x = sign_of(x);
  expect_tensors_bitwise(direct.forward(x, true), lowered.forward(x, true),
                         "forward");

  auto g_engine = engine_for(53);
  const Tensor g = Tensor::randn(
      {c.batch, c.out_ch, c.h + 2 * c.padding - c.kernel + 1,
       c.w + 2 * c.padding - c.kernel + 1},
      1.0f, g_engine);
  expect_tensors_bitwise(direct.backward(g), lowered.backward(g), "grad_input");
  const auto dp = direct.parameters();
  const auto lp = lowered.parameters();
  expect_tensors_bitwise(*dp[0].grad, *lp[0].grad, "weight_grad");
  expect_tensors_bitwise(*dp[1].grad, *lp[1].grad, "bias_grad");
}

INSTANTIATE_TEST_SUITE_P(
    SmallCnnAndEdgeShapes, ConvAlgoEquivalence,
    ::testing::Values(ConvCase{1, 8, 3, 1, 2, 16, 16},   // small-CNN conv1
                      ConvCase{8, 16, 3, 1, 2, 8, 8},    // small-CNN conv2
                      ConvCase{1, 1, 3, 0, 1, 3, 3},     // kernel == image
                      ConvCase{2, 3, 3, 2, 1, 4, 5},     // padding > kernel/2
                      ConvCase{3, 2, 1, 0, 2, 5, 5},     // 1x1 kernel
                      ConvCase{2, 2, 2, 1, 1, 4, 4}));   // even kernel

TEST(Conv2d, BackwardRequiresTrainingForward) {
  // Backward state is only kept for training-mode forwards: calling
  // backward before any forward, or after an inference forward (the
  // serving hot path, which must not retain the patch matrix), throws.
  auto engine = engine_for(59);
  Conv2d conv(1, 2, 3, 1, engine);
  const Tensor g({1, 2, 4, 4}, 1.0f);
  EXPECT_THROW((void)conv.backward(g), std::logic_error);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, 1.0f, engine);
  (void)conv.forward(x, false);
  EXPECT_THROW((void)conv.backward(g), std::logic_error);
  (void)conv.forward(x, true);
  EXPECT_NO_THROW((void)conv.backward(g));

  BinaryConv2d bconv(1, 2, 3, 1, engine);
  EXPECT_THROW((void)bconv.backward(g), std::logic_error);
  (void)bconv.forward(x, false);
  EXPECT_THROW((void)bconv.backward(g), std::logic_error);
  (void)bconv.forward(x, true);
  EXPECT_NO_THROW((void)bconv.backward(g));
}

TEST(Conv2d, DirectAlgoGradientCheck) {
  // The default-algo GradientCheck above now exercises the im2col path;
  // keep the direct reference loop finite-difference-checked too.
  auto engine = engine_for(57);
  Conv2d layer(2, 3, 3, 1, engine);
  layer.set_algo(Conv2d::Algo::kDirect);
  Tensor x = Tensor::randn({2, 2, 5, 5}, 1.0f, engine);
  check_input_gradient(layer, x);
  check_param_gradient(layer, x, 0);
  check_param_gradient(layer, x, 1);
}

TEST(MaxPool2d, SelectsMaximum) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  (void)pool.forward(x, true);
  Tensor g({1, 1, 1, 1}, std::vector<float>{2.0f});
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 2.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten flatten;
  Tensor x = Tensor({2, 3, 4, 4}, 1.5f);
  Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ReLU, ForwardAndGradient) {
  auto engine = engine_for(7);
  ReLU relu;
  Tensor x({1, 4}, std::vector<float>{-1.0f, 2.0f, -0.5f, 3.0f});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  // Keep probe inputs away from the kink at zero, where finite
  // differences are invalid.
  Tensor x2 = Tensor::randn({3, 6}, 1.0f, engine);
  for (std::size_t i = 0; i < x2.numel(); ++i) {
    if (std::abs(x2[i]) < 0.1f) {
      x2[i] = x2[i] >= 0.0f ? 0.1f : -0.1f;
    }
  }
  check_input_gradient(relu, x2);
}

TEST(HardTanh, ClampsAndGates) {
  HardTanh ht;
  Tensor x({1, 3}, std::vector<float>{-2.0f, 0.5f, 2.0f});
  Tensor y = ht.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  Tensor g({1, 3}, std::vector<float>{1.0f, 1.0f, 1.0f});
  Tensor gx = ht.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(SignActivation, BinarizesAndUsesSteWindow) {
  SignActivation sign;
  Tensor x({1, 4}, std::vector<float>{-0.5f, 0.5f, -2.0f, 0.0f});
  Tensor y = sign.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[2], -1.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
  Tensor g({1, 4}, std::vector<float>{1, 1, 1, 1});
  Tensor gx = sign.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 1.0f) << "inside STE window";
  EXPECT_FLOAT_EQ(gx[2], 0.0f) << "outside STE window";
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  BatchNorm bn(3);
  std::mt19937_64 engine(8);
  Tensor x = Tensor::randn({64, 3}, 2.0f, engine);
  Tensor y = bn.forward(x, true);
  for (std::size_t f = 0; f < 3; ++f) {
    float mean = 0.0f;
    float var = 0.0f;
    for (std::size_t i = 0; i < 64; ++i) {
      mean += y.at(i, f);
    }
    mean /= 64.0f;
    for (std::size_t i = 0; i < 64; ++i) {
      const float d = y.at(i, f) - mean;
      var += d * d;
    }
    var /= 64.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(BatchNorm, RunningStatsUsedAtEval) {
  BatchNorm bn(2);
  std::mt19937_64 engine(9);
  for (int step = 0; step < 200; ++step) {
    Tensor x = Tensor::randn({32, 2}, 1.0f, engine);
    for (std::size_t i = 0; i < x.numel(); ++i) {
      x[i] += 5.0f;  // shifted distribution
    }
    (void)bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.3f);
  Tensor probe({1, 2}, std::vector<float>{5.0f, 5.0f});
  Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0f, 0.3f);
}

TEST(BatchNorm, GradientCheck) {
  BatchNorm bn(4);
  std::mt19937_64 engine(10);
  Tensor x = Tensor::randn({8, 4}, 1.0f, engine);
  check_input_gradient(bn, x, 5e-2f);
  check_param_gradient(bn, x, 0, 5e-2f);
  check_param_gradient(bn, x, 1, 5e-2f);
}

TEST(BatchNorm, SupportsNchw) {
  BatchNorm bn(3);
  std::mt19937_64 engine(11);
  Tensor x = Tensor::randn({4, 3, 5, 5}, 1.0f, engine);
  Tensor y = bn.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Dropout, InactiveAtEvalByDefault) {
  Dropout drop(0.5f, 1);
  Tensor x({1, 100}, 1.0f);
  Tensor y = drop.forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], 1.0f);
  }
}

TEST(Dropout, McModeSamplesAtEval) {
  Dropout drop(0.5f, 2);
  drop.enable_at_inference(true);
  Tensor x({1, 1000}, 1.0f);
  Tensor y = drop.forward(x, false);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.08);
}

TEST(Dropout, InvertedScalingKeepsExpectation) {
  Dropout drop(0.25f, 3);
  Tensor x({1, 20000}, 1.0f);
  Tensor y = drop.forward(x, true);
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
}

// ------------------------------------------------------- Binary layers ----

TEST(BinaryDense, OutputUsesBinarizedWeights) {
  auto engine = engine_for(12);
  BinaryDense layer(4, 2, engine);
  layer.latent_weight() = Tensor({4, 2}, std::vector<float>{0.3f, -0.2f, 0.7f, 0.1f,
                                                            -0.4f, 0.9f, 0.2f, -0.6f});
  layer.bias().fill(0.0f);
  Tensor x({1, 4}, std::vector<float>{1, 1, 1, 1});
  Tensor y = layer.forward(x, true);
  // Column 0: signs (+,+,-,+) -> sum 2; alpha0 = (0.3+0.7+0.4+0.2)/4 = 0.4
  EXPECT_NEAR(y.at(0, 0), 2.0f * 0.4f, 1e-5f);
  // Column 1: signs (-,+,+,-) -> sum 0; alpha irrelevant.
  EXPECT_NEAR(y.at(0, 1), 0.0f, 1e-5f);
}

TEST(BinaryDense, ScalesArePerColumnAbsMean) {
  auto engine = engine_for(13);
  BinaryDense layer(3, 2, engine);
  layer.latent_weight() = Tensor({3, 2}, std::vector<float>{1, -2, 3, 4, -5, 6});
  Tensor alpha = layer.scales();
  EXPECT_NEAR(alpha[0], 3.0f, 1e-6f);
  EXPECT_NEAR(alpha[1], 4.0f, 1e-6f);
}

TEST(BinaryDense, TrainingReducesLossOnToyProblem) {
  auto engine = engine_for(14);
  BinaryDense layer(8, 2, engine);
  Tensor x = Tensor::randn({16, 8}, 1.0f, engine);
  // Supervise toward a fixed random target through MSE-style probe loss.
  neuspin::testing::ProbeLoss loss(Shape{16, 2});
  float first = 0.0f;
  auto params = layer.parameters();
  for (int step = 0; step < 50; ++step) {
    Tensor y = layer.forward(x, true);
    const float l = loss.value(y);
    if (step == 0) {
      first = l;
    }
    (void)layer.backward(loss.grad());
    for (auto& p : params) {
      for (std::size_t i = 0; i < p.value->numel(); ++i) {
        (*p.value)[i] -= 0.01f * (*p.grad)[i];
      }
      p.grad->fill(0.0f);
    }
  }
  Tensor y = layer.forward(x, true);
  EXPECT_LT(loss.value(y), first) << "STE updates must reduce the probe loss";
}

TEST(BinaryConv2d, ChannelScalesMatchAbsMean) {
  auto engine = engine_for(15);
  BinaryConv2d layer(1, 2, 3, 1, engine);
  layer.latent_weight().fill(0.5f);
  Tensor alpha = layer.channel_scales();
  EXPECT_NEAR(alpha[0], 0.5f, 1e-6f);
  EXPECT_NEAR(alpha[1], 0.5f, 1e-6f);
}

TEST(BinaryConv2d, OutputShape) {
  auto engine = engine_for(16);
  BinaryConv2d layer(2, 4, 3, 1, engine);
  Tensor x = Tensor::randn({1, 2, 8, 8}, 1.0f, engine);
  Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 8, 8}));
}

TEST(SignOf, Binarizes) {
  Tensor t({3}, std::vector<float>{-0.1f, 0.0f, 5.0f});
  Tensor s = sign_of(t);
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 1.0f);
  EXPECT_FLOAT_EQ(s[2], 1.0f);
}

// ----------------------------------------------------------------- LSTM ----

TEST(Lstm, OutputShape) {
  auto engine = engine_for(17);
  Lstm lstm(3, 5, engine);
  Tensor x = Tensor::randn({2, 7, 3}, 1.0f, engine);
  Tensor h = lstm.forward(x, true);
  EXPECT_EQ(h.shape(), (Shape{2, 5}));
}

TEST(Lstm, GradientCheck) {
  auto engine = engine_for(18);
  Lstm lstm(2, 3, engine);
  Tensor x = Tensor::randn({2, 4, 2}, 0.8f, engine);
  check_input_gradient(lstm, x, 3e-2f);
  check_param_gradient(lstm, x, 0, 3e-2f);
  check_param_gradient(lstm, x, 1, 3e-2f);
  check_param_gradient(lstm, x, 2, 3e-2f);
}

TEST(Lstm, HiddenStateBounded) {
  auto engine = engine_for(19);
  Lstm lstm(1, 4, engine);
  Tensor x = Tensor::randn({1, 50, 1}, 5.0f, engine);
  Tensor h = lstm.forward(x, true);
  for (std::size_t i = 0; i < h.numel(); ++i) {
    EXPECT_LE(std::abs(h[i]), 1.0f) << "LSTM hidden state is tanh-bounded";
  }
}

}  // namespace
}  // namespace neuspin::nn
