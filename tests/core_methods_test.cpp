// Unit tests for the NeuSpin Bayesian method layers.
#include <cmath>

#include <gtest/gtest.h>

#include "core/affinedrop.h"
#include "core/scaledrop.h"
#include "core/spinbayes.h"
#include "core/spindrop.h"
#include "core/subset_vi.h"
#include "nn/loss.h"
#include "test_util.h"

namespace neuspin::core {
namespace {

// ------------------------------------------------------------- SpinDrop ----

TEST(SpinDrop, InactiveWithoutTrainingOrMc) {
  auto layer = make_pseudo_spindrop(DropGranularity::kNeuron, 8, 0.5, 1);
  nn::Tensor x({2, 8}, 1.0f);
  nn::Tensor y = layer->forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], 1.0f);
  }
}

TEST(SpinDrop, TrainingDropsAtConfiguredRate) {
  auto layer = make_pseudo_spindrop(DropGranularity::kNeuron, 64, 0.3, 2);
  nn::Tensor x({50, 64}, 1.0f);
  nn::Tensor y = layer->forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()), 0.3, 0.04);
}

TEST(SpinDrop, McModeSharesMaskAcrossBatch) {
  auto layer = make_pseudo_spindrop(DropGranularity::kNeuron, 32, 0.5, 3);
  layer->enable_mc(true);
  nn::Tensor x({4, 32}, 1.0f);
  nn::Tensor y = layer->forward(x, false);
  // Hardware semantics: one module gates one neuron for the whole pass.
  for (std::size_t u = 0; u < 32; ++u) {
    for (std::size_t b = 1; b < 4; ++b) {
      EXPECT_FLOAT_EQ(y.at(b, u), y.at(0, u));
    }
  }
}

TEST(SpinDrop, SpatialGranularityDropsWholeChannels) {
  auto layer = make_pseudo_spindrop(DropGranularity::kFeatureMap, 8, 0.5, 4);
  layer->enable_mc(true);
  nn::Tensor x({2, 8, 4, 4}, 1.0f);
  nn::Tensor y = layer->forward(x, false);
  for (std::size_t c = 0; c < 8; ++c) {
    const float first = y.at4(0, c, 0, 0);
    for (std::size_t h = 0; h < 4; ++h) {
      for (std::size_t w = 0; w < 4; ++w) {
        EXPECT_FLOAT_EQ(y.at4(0, c, h, w), first)
            << "spatial dropout must gate entire feature maps";
        EXPECT_FLOAT_EQ(y.at4(1, c, h, w), first);
      }
    }
  }
}

TEST(SpinDrop, BackwardUsesSameMask) {
  auto layer = make_pseudo_spindrop(DropGranularity::kNeuron, 16, 0.5, 5);
  nn::Tensor x({3, 16}, 2.0f);
  nn::Tensor y = layer->forward(x, true);
  nn::Tensor g({3, 16}, 1.0f);
  nn::Tensor gx = layer->backward(g);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(gx[i], y[i] == 0.0f ? 0.0f : 1.0f);
  }
}

TEST(SpinDrop, SpintronicSourcesShowDeviceVariation) {
  energy::EnergyLedger ledger;
  auto layer =
      make_spintronic_spindrop(DropGranularity::kNeuron, 64, 0.3, 6.0, 7, &ledger);
  // Realized probabilities vary module-to-module; their mean stays near
  // the target but individual modules deviate.
  const double mean_p = layer->realized_probability();
  EXPECT_NEAR(mean_p, 0.3, 0.15);
  layer->enable_mc(true);
  nn::Tensor x({1, 64}, 1.0f);
  (void)layer->forward(x, false);
  EXPECT_EQ(ledger.count(energy::Component::kRngDropoutCycle), 64u)
      << "one stochastic cycle per neuron per pass";
}

TEST(SpinDrop, ModuleCountReflectsGranularity) {
  auto neuron = make_pseudo_spindrop(DropGranularity::kNeuron, 128, 0.2, 8);
  auto spatial = make_pseudo_spindrop(DropGranularity::kFeatureMap, 16, 0.2, 9);
  EXPECT_EQ(neuron->module_count(), 128u);
  EXPECT_EQ(spatial->module_count(), 16u);
}

// ------------------------------------------------------------ ScaleDrop ----

TEST(ScaleDrop, AdaptiveProbabilityGrowsWithLayerSize) {
  const double p_small = adaptive_scale_dropout_p(1000);
  const double p_mid = adaptive_scale_dropout_p(30000);
  const double p_large = adaptive_scale_dropout_p(1000000);
  EXPECT_LT(p_small, p_mid);
  EXPECT_LT(p_mid, p_large);
  EXPECT_NEAR(p_small, 0.05, 1e-9);
  EXPECT_NEAR(p_large, 0.25, 1e-9);
}

TEST(ScaleDrop, AppliesLearnableScale) {
  ScaleDropConfig config;
  config.channels = 4;
  config.dropout_p = 0.0;
  ScaleDropLayer layer(config);
  layer.scale() = nn::Tensor({4}, std::vector<float>{0.5f, 1.0f, 2.0f, 3.0f});
  nn::Tensor x({1, 4}, 1.0f);
  nn::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 3.0f);
}

TEST(ScaleDrop, DropReplacesScaleWithNeutralOne) {
  ScaleDropConfig config;
  config.channels = 4;
  config.dropout_p = 0.999;  // force dropping
  config.seed = 3;
  ScaleDropLayer layer(config);
  layer.scale() = nn::Tensor({4}, 5.0f);
  layer.enable_mc(true);
  nn::Tensor x({1, 4}, 2.0f);
  nn::Tensor y = layer.forward(x, false);
  EXPECT_TRUE(layer.last_pass_dropped());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y[i], 2.0f) << "dropped scale must act as multiplication by one";
  }
}

TEST(ScaleDrop, HardwareProbabilityIsGaussianShifted) {
  ScaleDropConfig config;
  config.channels = 2;
  config.dropout_p = 0.2;
  config.hw_p_sigma = 0.05;
  double min_p = 1.0;
  double max_p = 0.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    config.seed = seed;
    ScaleDropLayer layer(config);
    min_p = std::min(min_p, layer.realized_p());
    max_p = std::max(max_p, layer.realized_p());
  }
  EXPECT_LT(min_p, 0.2);
  EXPECT_GT(max_p, 0.2);
  EXPECT_GT(min_p, 0.0);
}

TEST(ScaleDrop, GradientCheckWhenNotDropped) {
  ScaleDropConfig config;
  config.channels = 5;
  config.dropout_p = 0.0;  // keep forward deterministic for the check
  ScaleDropLayer layer(config);
  std::mt19937_64 engine(11);
  layer.scale() = nn::Tensor::uniform({5}, 0.5f, 1.5f, engine);
  nn::Tensor x = nn::Tensor::randn({3, 5}, 1.0f, engine);
  neuspin::testing::check_input_gradient(layer, x);
  neuspin::testing::check_param_gradient(layer, x, 0);
}

TEST(ScaleDrop, RegularizerPullsScaleTowardOne) {
  nn::Tensor scale({3}, std::vector<float>{0.5f, 1.0f, 2.0f});
  nn::Tensor grad({3});
  const float value = nn::scale_regularizer(scale, 1.0f, grad);
  EXPECT_GT(value, 0.0f);
  EXPECT_LT(grad[0], 0.0f) << "below-one scales are pushed up";
  EXPECT_NEAR(grad[1], 0.0f, 1e-6f);
  EXPECT_GT(grad[2], 0.0f) << "above-one scales are pushed down";
}

// ----------------------------------------------------------- AffineDrop ----

TEST(InvertedNorm, NormalizesAfterAffine) {
  AffineDropConfig config;
  config.features = 3;
  config.dropout_p = 0.0;
  InvertedNormLayer layer(config);
  std::mt19937_64 engine(12);
  nn::Tensor x = nn::Tensor::randn({64, 3}, 2.0f, engine);
  nn::Tensor y = layer.forward(x, true);
  for (std::size_t f = 0; f < 3; ++f) {
    float mean = 0.0f;
    for (std::size_t i = 0; i < 64; ++i) {
      mean += y.at(i, f);
    }
    EXPECT_NEAR(mean / 64.0f, 0.0f, 1e-4f);
  }
}

TEST(InvertedNorm, ScalarMasksDropWholeVectors) {
  AffineDropConfig config;
  config.features = 4;
  config.dropout_p = 0.999;
  config.seed = 4;
  InvertedNormLayer layer(config);
  layer.weight() = nn::Tensor({4}, 3.0f);
  layer.bias() = nn::Tensor({4}, 2.0f);
  std::mt19937_64 engine(13);
  nn::Tensor x = nn::Tensor::randn({32, 4}, 1.0f, engine);
  (void)layer.forward(x, true);
  EXPECT_TRUE(layer.last_weight_dropped());
  EXPECT_TRUE(layer.last_bias_dropped());
}

TEST(InvertedNorm, GradientCheckWithoutDropout) {
  AffineDropConfig config;
  config.features = 4;
  config.dropout_p = 0.0;
  InvertedNormLayer layer(config);
  std::mt19937_64 engine(14);
  layer.weight() = nn::Tensor::uniform({4}, 0.5f, 1.5f, engine);
  layer.bias() = nn::Tensor::uniform({4}, -0.5f, 0.5f, engine);
  nn::Tensor x = nn::Tensor::randn({8, 4}, 1.0f, engine);
  neuspin::testing::check_input_gradient(layer, x, 5e-2f);
  neuspin::testing::check_param_gradient(layer, x, 0, 5e-2f);
  neuspin::testing::check_param_gradient(layer, x, 1, 5e-2f);
}

TEST(InvertedNorm, McPassesAreStochastic) {
  AffineDropConfig config;
  config.features = 4;
  config.dropout_p = 0.5;
  config.seed = 5;
  InvertedNormLayer layer(config);
  layer.enable_mc(true);
  layer.weight() = nn::Tensor({4}, 2.0f);
  std::mt19937_64 engine(15);
  // Push running stats through a few training passes first.
  for (int i = 0; i < 20; ++i) {
    nn::Tensor x = nn::Tensor::randn({32, 4}, 1.0f, engine);
    (void)layer.forward(x, true);
  }
  nn::Tensor probe = nn::Tensor::randn({1, 4}, 1.0f, engine);
  bool any_difference = false;
  nn::Tensor first = layer.forward(probe, false);
  for (int pass = 0; pass < 20 && !any_difference; ++pass) {
    nn::Tensor y = layer.forward(probe, false);
    for (std::size_t i = 0; i < y.numel(); ++i) {
      if (std::abs(y[i] - first[i]) > 1e-6f) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference) << "affine dropout must randomize MC passes";
}

// ------------------------------------------------------------ Subset VI ----

TEST(BayesianScale, DeterministicEvalUsesMu) {
  BayesScaleConfig config;
  config.channels = 3;
  BayesianScaleLayer layer(config);
  layer.mu() = nn::Tensor({3}, std::vector<float>{0.5f, 1.0f, 1.5f});
  nn::Tensor x({1, 3}, 2.0f);
  nn::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(BayesianScale, McSamplesVaryWithPosteriorWidth) {
  BayesScaleConfig config;
  config.channels = 1;
  config.init_rho = 0.0f;  // softplus(0) ~ 0.69, wide posterior
  BayesianScaleLayer layer(config);
  layer.enable_mc(true);
  nn::Tensor x({1, 1}, 1.0f);
  float min_v = 1e9f;
  float max_v = -1e9f;
  for (int i = 0; i < 50; ++i) {
    const nn::Tensor y = layer.forward(x, false);
    min_v = std::min(min_v, y[0]);
    max_v = std::max(max_v, y[0]);
  }
  EXPECT_GT(max_v - min_v, 0.5f) << "wide posterior must produce spread samples";
}

TEST(BayesianScale, QuantizationSnapsToGrid) {
  BayesScaleConfig config;
  config.channels = 1;
  config.quant_levels = 5;  // grid 0.5, 0.75, 1.0, 1.25, 1.5
  config.quant_lo = 0.5f;
  config.quant_hi = 1.5f;
  BayesianScaleLayer layer(config);
  EXPECT_FLOAT_EQ(layer.quantize(0.8f), 0.75f);
  EXPECT_FLOAT_EQ(layer.quantize(1.1f), 1.0f);
  EXPECT_FLOAT_EQ(layer.quantize(99.0f), 1.5f) << "clipping to the cell range";
}

TEST(BayesianScale, KlRegularizerShrinksWithPriorMatch) {
  // KL of the prior against itself must be ~0, and grows when mu drifts.
  const float prior_sigma = 0.1f;
  nn::Tensor mu({2}, 1.0f);
  // softplus(rho) == prior_sigma  =>  rho = ln(e^sigma - 1)
  const float rho_value = std::log(std::exp(prior_sigma) - 1.0f);
  nn::Tensor rho({2}, rho_value);
  nn::Tensor mu_grad({2});
  nn::Tensor rho_grad({2});
  const float kl_match =
      nn::gaussian_scale_kl(mu, rho, prior_sigma, 1.0f, mu_grad, rho_grad);
  EXPECT_NEAR(kl_match, 0.0f, 1e-4f);

  mu = nn::Tensor({2}, 2.0f);  // drift from the prior mean
  mu_grad.fill(0.0f);
  rho_grad.fill(0.0f);
  const float kl_drift =
      nn::gaussian_scale_kl(mu, rho, prior_sigma, 1.0f, mu_grad, rho_grad);
  EXPECT_GT(kl_drift, kl_match);
  EXPECT_GT(mu_grad[0], 0.0f) << "gradient must pull mu back toward 1";
}

TEST(BayesianScale, GradientCheckDeterministicPath) {
  BayesScaleConfig config;
  config.channels = 4;
  BayesianScaleLayer layer(config);
  std::mt19937_64 engine(16);
  layer.mu() = nn::Tensor::uniform({4}, 0.8f, 1.2f, engine);
  nn::Tensor x = nn::Tensor::randn({3, 4}, 1.0f, engine);
  // training=true samples eps per pass, which breaks finite differences;
  // the deterministic eval path checks the mu-gradient chain instead.
  nn::Tensor y = layer.forward(x, false);
  neuspin::testing::ProbeLoss loss(y.shape());
  layer.mu_grad().fill(0.0f);
  (void)layer.backward(loss.grad());
  // Analytic mu-grad vs finite differences.
  for (std::size_t c = 0; c < 4; ++c) {
    const float eps = 1e-3f;
    layer.mu()[c] += eps;
    const float up = loss.value(layer.forward(x, false));
    layer.mu()[c] -= 2.0f * eps;
    const float down = loss.value(layer.forward(x, false));
    layer.mu()[c] += eps;
    EXPECT_NEAR(layer.mu_grad()[c], (up - down) / (2.0f * eps), 2e-2f);
  }
}

// ------------------------------------------------------------ SpinBayes ----

TEST(SpinArbiter, UniformSelection) {
  SpinArbiter arbiter(8, 17);
  std::vector<std::size_t> counts(8, 0);
  const int draws = 8000;
  for (int i = 0; i < draws; ++i) {
    ++counts[arbiter.select()];
  }
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 8.0, draws / 8.0 * 0.15);
  }
}

TEST(SpinArbiter, OneHotMatchesSelection) {
  SpinArbiter arbiter(4, 18);
  const std::size_t sel = arbiter.select();
  const auto one_hot = arbiter.one_hot();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(one_hot[i], i == sel ? 1 : 0);
  }
}

TEST(SpinArbiter, BitsPerDrawIsCeilLog2) {
  EXPECT_EQ(SpinArbiter(8, 1).bits_per_draw(), 3u);
  EXPECT_EQ(SpinArbiter(5, 1).bits_per_draw(), 3u);
  EXPECT_EQ(SpinArbiter(2, 1).bits_per_draw(), 1u);
}

TEST(SpinBayesLayer, InstancesComeFromPosterior) {
  BayesScaleConfig config;
  config.channels = 6;
  config.init_rho = -4.0f;  // narrow posterior
  BayesianScaleLayer posterior(config);
  posterior.mu() = nn::Tensor({6}, 1.2f);

  SpinBayesConfig sb;
  sb.instances = 4;
  sb.quant_levels = 16;
  auto layer = SpinBayesScaleLayer::from_posterior(posterior, sb);
  EXPECT_EQ(layer->instance_count(), 4u);
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(layer->instance(n)[c], 1.2f, 0.15f)
          << "narrow posterior samples must cluster around mu";
    }
  }
}

TEST(SpinBayesLayer, McPassesSelectDifferentInstances) {
  std::vector<nn::Tensor> instances;
  for (int n = 0; n < 4; ++n) {
    instances.emplace_back(nn::Shape{2}, static_cast<float>(n + 1));
  }
  SpinBayesScaleLayer layer(std::move(instances), 19);
  layer.enable_mc(true);
  nn::Tensor x({1, 2}, 1.0f);
  std::vector<bool> seen(4, false);
  for (int pass = 0; pass < 100; ++pass) {
    (void)layer.forward(x, false);
    seen[layer.last_selection()] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s) << "all crossbar instances must be reachable";
  }
}

TEST(SpinBayesLayer, DeterministicEvalUsesFirstInstance) {
  std::vector<nn::Tensor> instances;
  instances.emplace_back(nn::Shape{2}, 2.0f);
  instances.emplace_back(nn::Shape{2}, 9.0f);
  SpinBayesScaleLayer layer(std::move(instances), 20);
  nn::Tensor x({1, 2}, 1.0f);
  const nn::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(SpinBayesLayer, QuantizedInstancesLieOnGrid) {
  BayesScaleConfig config;
  config.channels = 8;
  config.init_rho = 0.0f;  // wide posterior to exercise the grid
  BayesianScaleLayer posterior(config);

  SpinBayesConfig sb;
  sb.instances = 6;
  sb.quant_levels = 8;
  sb.quant_lo = 0.5f;
  sb.quant_hi = 1.5f;
  auto layer = SpinBayesScaleLayer::from_posterior(posterior, sb);
  const float step = (1.5f - 0.5f) / 7.0f;
  for (std::size_t n = 0; n < 6; ++n) {
    for (std::size_t c = 0; c < 8; ++c) {
      const float v = layer->instance(n)[c];
      const float level = (v - 0.5f) / step;
      EXPECT_NEAR(level, std::round(level), 1e-4f)
          << "every stored scale must sit on a multi-level cell level";
    }
  }
}

}  // namespace
}  // namespace neuspin::core
