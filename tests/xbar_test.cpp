// Unit tests for the crossbar CIM substrate.
#include <cmath>

#include <gtest/gtest.h>

#include "xbar/adc.h"
#include "xbar/bitcell.h"
#include "xbar/crossbar.h"
#include "xbar/decoder.h"
#include "xbar/mapping.h"
#include "xbar/periphery.h"
#include "xbar/tile.h"

namespace neuspin::xbar {
namespace {

// ------------------------------------------------------------------ ADC ----

class AdcBits : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdcBits, QuantizationErrorBoundedByLsb) {
  Adc adc(GetParam(), 100.0);
  for (double i = -99.0; i < 99.0; i += 7.3) {
    const double q = adc.quantize(i);
    EXPECT_LE(std::abs(q - i), adc.lsb() * 0.5 + 1e-9)
        << "in-range quantization error must stay within LSB/2";
  }
}

TEST_P(AdcBits, MoreBitsSmallerLsb) {
  if (GetParam() >= 16) {
    GTEST_SKIP();
  }
  Adc coarse(GetParam(), 100.0);
  Adc fine(GetParam() + 1, 100.0);
  EXPECT_LT(fine.lsb(), coarse.lsb());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AdcBits, ::testing::Values(4u, 6u, 8u, 10u, 12u));

TEST(Adc, ClipsOutOfRange) {
  Adc adc(8, 10.0);
  EXPECT_LE(adc.quantize(100.0), 10.0);
  EXPECT_GE(adc.quantize(-100.0), -10.0);
}

TEST(Adc, CodeIsMonotone) {
  Adc adc(6, 50.0);
  std::int64_t prev = adc.code(-60.0);
  for (double i = -55.0; i <= 55.0; i += 1.0) {
    const std::int64_t c = adc.code(i);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Adc, RejectsInvalidConfig) {
  EXPECT_THROW(Adc(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Adc(8, -1.0), std::invalid_argument);
}

TEST(SenseAmp, SignDetection) {
  SenseAmp sa(0.0);
  EXPECT_FLOAT_EQ(sa.evaluate(0.5), 1.0f);
  EXPECT_FLOAT_EQ(sa.evaluate(-0.5), -1.0f);
  SenseAmp biased(1.0);
  EXPECT_FLOAT_EQ(biased.evaluate(0.5), -1.0f);
}

// -------------------------------------------------------------- Bitcell ----

TEST(XnorBitcell, ImplementsXnorTruthTable) {
  const device::MtjParams params;
  for (float weight : {1.0f, -1.0f}) {
    XnorBitcell cell(params, weight);
    for (float input : {1.0f, -1.0f}) {
      const double i = cell.differential_current(input, 0.1);
      const float expected_sign = weight * input;  // XNOR of +-1 encoding
      EXPECT_GT(i * expected_sign, 0.0)
          << "differential current sign must equal input XNOR weight";
    }
  }
}

TEST(XnorBitcell, MagnitudeIsDeltaConductanceTimesVoltage) {
  const device::MtjParams params;
  XnorBitcell cell(params, 1.0f);
  const double i = cell.differential_current(1.0f, 0.1);
  EXPECT_NEAR(i, 0.1 * XnorBitcell::delta_conductance(params), 1e-9);
}

TEST(XnorBitcell, RejectsNonBinaryInput) {
  XnorBitcell cell(device::MtjParams{}, 1.0f);
  EXPECT_THROW((void)cell.differential_current(0.5f, 0.1), std::invalid_argument);
}

// ------------------------------------------------------------- Crossbar ----

TEST(Crossbar, IdealMacMatchesLinearAlgebra) {
  CrossbarConfig config;
  config.rows = 8;
  config.cols = 4;
  config.wire_resistance = 0.0;  // disable IR drop for the exact check
  Crossbar xb(config);
  // Program a checkerboard of P/AP states.
  std::vector<float> weights(config.rows * config.cols);
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t c = 0; c < config.cols; ++c) {
      weights[r * config.cols + c] = ((r + c) % 2 == 0) ? 1.0f : -1.0f;
    }
  }
  xb.program_binary(weights);

  std::vector<device::Volt> v(config.rows, 0.1);
  const auto currents = xb.mac(v);
  for (std::size_t c = 0; c < config.cols; ++c) {
    double expected = 0.0;
    for (std::size_t r = 0; r < config.rows; ++r) {
      expected += v[r] * xb.conductance(r, c);
    }
    EXPECT_NEAR(currents[c], expected, 1e-9);
  }
}

TEST(Crossbar, IrDropAttenuatesLargeArrays) {
  CrossbarConfig config;
  config.rows = 128;
  config.cols = 1;
  Crossbar with_ir(config);
  config.wire_resistance = 0.0;
  Crossbar without_ir(config);
  std::vector<float> weights(config.rows, 1.0f);
  with_ir.program_binary(weights);
  without_ir.program_binary(weights);
  std::vector<device::Volt> v(config.rows, 0.1);
  EXPECT_LT(with_ir.mac(v)[0], without_ir.mac(v)[0])
      << "wire resistance must attenuate the column current";
}

TEST(Crossbar, VariabilityPerturbsConductances) {
  CrossbarConfig config;
  config.rows = 16;
  config.cols = 16;
  device::VariabilityParams var;
  var.resistance_sigma = 0.1;
  Crossbar xb(config, var, device::DefectRates{}, 7);
  // Cells must differ from one another (variation) but stay positive.
  const double g00 = xb.conductance(0, 0);
  bool any_different = false;
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t c = 0; c < config.cols; ++c) {
      EXPECT_GT(xb.conductance(r, c), 0.0);
      if (std::abs(xb.conductance(r, c) - g00) > 1e-9) {
        any_different = true;
      }
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Crossbar, OpenDefectRemovesContribution) {
  CrossbarConfig config;
  config.rows = 4;
  config.cols = 2;
  config.wire_resistance = 0.0;
  Crossbar xb(config);
  xb.program_binary(std::vector<float>(8, 1.0f));
  std::vector<device::Volt> v(4, 0.1);
  const double before = xb.mac(v)[0];
  xb.defects().set(0, 0, device::DefectKind::kOpen);
  const double after = xb.mac(v)[0];
  EXPECT_LT(after, before);
  EXPECT_NEAR(before - after, 0.1 * device::conductance_from_kohm(config.mtj.r_parallel),
              1e-6);
}

TEST(Crossbar, ReadNoiseIsZeroMeanMultiplicative) {
  CrossbarConfig config;
  config.rows = 8;
  config.cols = 1;
  config.wire_resistance = 0.0;
  Crossbar xb(config);
  xb.program_binary(std::vector<float>(8, 1.0f));
  std::vector<device::Volt> v(8, 0.1);
  const double clean = xb.mac(v)[0];
  std::mt19937_64 engine(3);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sum += xb.mac_noisy(v, engine, 0.05)[0];
  }
  EXPECT_NEAR(sum / n, clean, clean * 0.01);
}

TEST(Crossbar, RejectsWrongVectorLength) {
  Crossbar xb(CrossbarConfig{});
  std::vector<device::Volt> v(3, 0.1);
  EXPECT_THROW((void)xb.mac(v), std::invalid_argument);
}

// -------------------------------------------------------------- Decoder ----

TEST(Decoder, EnableDisableRanges) {
  WordlineDecoder dec(16);
  dec.enable_range(4, 8);
  EXPECT_EQ(dec.enabled_count(), 8u);
  EXPECT_TRUE(dec.is_enabled(4));
  EXPECT_TRUE(dec.is_enabled(11));
  EXPECT_FALSE(dec.is_enabled(3));
  dec.disable_range(6, 2);
  EXPECT_EQ(dec.enabled_count(), 6u);
  dec.disable_all();
  EXPECT_EQ(dec.enabled_count(), 0u);
}

TEST(Decoder, MultiRowEnableGatesVoltages) {
  WordlineDecoder dec(4);
  dec.enable_range(1, 2);
  std::vector<double> v = {1.0, 1.0, 1.0, 1.0};
  dec.apply(v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(Decoder, AddressBits) {
  EXPECT_EQ(WordlineDecoder(16).address_bits(), 4u);
  EXPECT_EQ(WordlineDecoder(17).address_bits(), 5u);
  EXPECT_EQ(WordlineDecoder(1).address_bits(), 0u);
}

TEST(Decoder, RangeOverflowThrows) {
  WordlineDecoder dec(8);
  EXPECT_THROW(dec.enable_range(6, 4), std::out_of_range);
}

// -------------------------------------------------------------- Mapping ----

TEST(Mapping, Strategy1SingleTallCrossbar) {
  ConvGeometry g;
  g.in_channels = 16;
  g.out_channels = 32;
  g.kernel = 3;
  const MappingCensus c = census(g, MappingStrategy::kUnfoldedColumns);
  EXPECT_EQ(c.crossbar_count, 1u);
  EXPECT_EQ(c.crossbar_rows, 9u * 16u);
  EXPECT_EQ(c.crossbar_cols, 32u);
  EXPECT_EQ(c.dropout_modules, 16u);
  EXPECT_EQ(c.dropout_fanout, 9u);
}

TEST(Mapping, Strategy2KernelPositionGrid) {
  ConvGeometry g;
  g.in_channels = 16;
  g.out_channels = 32;
  g.kernel = 3;
  const MappingCensus c = census(g, MappingStrategy::kKernelPosition);
  EXPECT_EQ(c.crossbar_count, 9u);
  EXPECT_EQ(c.crossbar_rows, 16u);
  EXPECT_EQ(c.crossbar_cols, 32u);
  EXPECT_EQ(c.dropout_modules, 16u);
  EXPECT_EQ(c.dropout_fanout, 1u)
      << "strategy 2 lets one broadcast line gate a whole input channel";
}

TEST(Mapping, BothStrategiesStoreSameCellCount) {
  ConvGeometry g;
  const auto c1 = census(g, MappingStrategy::kUnfoldedColumns);
  const auto c2 = census(g, MappingStrategy::kKernelPosition);
  EXPECT_EQ(c1.total_cells, c2.total_cells)
      << "the mapping changes the layout, not the synapse count";
}

TEST(Mapping, DropoutModuleGeneralization) {
  // The Fig. 1 point: the module count is mapping-independent but the
  // fan-out differs by K*K between strategies.
  for (std::size_t k : {3u, 5u, 7u}) {
    ConvGeometry g;
    g.kernel = k;
    const auto c1 = census(g, MappingStrategy::kUnfoldedColumns);
    const auto c2 = census(g, MappingStrategy::kKernelPosition);
    EXPECT_EQ(c1.dropout_modules, c2.dropout_modules);
    EXPECT_EQ(c1.dropout_fanout, k * k);
    EXPECT_EQ(c2.dropout_fanout, 1u);
  }
}

// ------------------------------------------------------------ Periphery ----

TEST(Periphery, AccumulatorSumsPartials) {
  energy::EnergyLedger ledger;
  AccumulatorAdder acc(3, &ledger);
  acc.accumulate({1.0, 2.0, 3.0});
  acc.accumulate({0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(acc.value()[0], 1.5);
  EXPECT_DOUBLE_EQ(acc.value()[2], 3.5);
  EXPECT_EQ(ledger.count(energy::Component::kDigitalAdd), 6u);
}

TEST(Periphery, AveragingBlockMeanAndVariance) {
  AveragingBlock avg(2);
  avg.add_sample({1.0, 10.0});
  avg.add_sample({3.0, 10.0});
  const auto mean = avg.mean();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 10.0);
  const auto var = avg.variance();
  EXPECT_DOUBLE_EQ(var[0], 1.0);
  EXPECT_DOUBLE_EQ(var[1], 0.0);
}

TEST(Periphery, AveragingBlockGuardsEmptyState) {
  AveragingBlock avg(2);
  EXPECT_THROW((void)avg.mean(), std::logic_error);
  avg.add_sample({1.0, 1.0});
  EXPECT_THROW((void)avg.variance(), std::logic_error);
}

// ----------------------------------------------------------------- Tile ----

TileConfig ideal_tile_config() {
  TileConfig config;
  config.crossbar.wire_resistance = 0.0;
  config.adc_bits = 12;  // fine quantization for exactness checks
  return config;
}

TEST(DenseTile, MatchesSoftwareMatmulForBinaryInputs) {
  const std::size_t in = 32;
  const std::size_t out = 8;
  std::mt19937_64 engine(5);
  std::vector<float> weights(in * out);
  for (auto& w : weights) {
    w = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::vector<float> scales(out, 1.0f);
  DenseTile tile(ideal_tile_config(), in, out, weights, scales, 9);

  std::vector<float> input(in);
  for (auto& x : input) {
    x = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::mt19937_64 fwd_engine(1);
  const auto hw = tile.forward(input, nullptr, fwd_engine);
  for (std::size_t c = 0; c < out; ++c) {
    float expected = 0.0f;
    for (std::size_t r = 0; r < in; ++r) {
      expected += input[r] * weights[r * out + c];
    }
    EXPECT_NEAR(hw[c], expected, 0.6f)
        << "tile output must match the signed popcount within ADC error";
  }
}

TEST(DenseTile, RowBlockingHandlesTallMatrices) {
  const std::size_t in = 300;  // forces 3 blocks at max_rows=128
  const std::size_t out = 4;
  std::vector<float> weights(in * out, 1.0f);
  std::vector<float> scales(out, 1.0f);
  DenseTile tile(ideal_tile_config(), in, out, weights, scales, 2);
  EXPECT_EQ(tile.block_count(), 3u);

  std::vector<float> input(in, 1.0f);
  std::mt19937_64 engine(1);
  const auto y = tile.forward(input, nullptr, engine);
  EXPECT_NEAR(y[0], static_cast<float>(in), static_cast<float>(in) * 0.02f);
}

TEST(DenseTile, GatedRowsContributeNothing) {
  const std::size_t in = 16;
  const std::size_t out = 2;
  std::vector<float> weights(in * out, 1.0f);
  std::vector<float> scales(out, 1.0f);
  DenseTile tile(ideal_tile_config(), in, out, weights, scales, 3);
  std::vector<float> input(in, 1.0f);
  std::vector<std::uint8_t> enabled(in, 1);
  for (std::size_t i = 0; i < in / 2; ++i) {
    enabled[i] = 0;  // drop half the rows
  }
  std::mt19937_64 engine(1);
  const auto y = tile.forward_gated(input, enabled, nullptr, engine);
  EXPECT_NEAR(y[0], static_cast<float>(in) / 2.0f, 0.6f);
}

TEST(DenseTile, ScalesMultiplyColumns) {
  const std::size_t in = 8;
  const std::size_t out = 2;
  std::vector<float> weights(in * out, 1.0f);
  std::vector<float> scales = {0.5f, 2.0f};
  DenseTile tile(ideal_tile_config(), in, out, weights, scales, 4);
  std::vector<float> input(in, 1.0f);
  std::mt19937_64 engine(1);
  const auto y = tile.forward(input, nullptr, engine);
  EXPECT_NEAR(y[1] / y[0], 4.0f, 0.1f);
}

TEST(DenseTile, LedgerRecordsExpectedEvents) {
  const std::size_t in = 16;
  const std::size_t out = 4;
  std::vector<float> weights(in * out, 1.0f);
  std::vector<float> scales(out, 1.0f);
  DenseTile tile(ideal_tile_config(), in, out, weights, scales, 5);
  std::vector<float> input(in, 1.0f);
  energy::EnergyLedger ledger(12);
  std::mt19937_64 engine(1);
  (void)tile.forward(input, &ledger, engine);
  EXPECT_EQ(ledger.count(energy::Component::kWordlineActivation), in);
  EXPECT_EQ(ledger.count(energy::Component::kXbarCellRead), 2 * in * out);
  EXPECT_EQ(ledger.count(energy::Component::kAdcConversion), out);
  EXPECT_GT(ledger.total_energy(), 0.0);
}

TEST(DenseTile, DefectInjectionDegradesAccuracy) {
  const std::size_t in = 64;
  const std::size_t out = 4;
  std::mt19937_64 engine(6);
  std::vector<float> weights(in * out);
  for (auto& w : weights) {
    w = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::vector<float> scales(out, 1.0f);
  DenseTile tile(ideal_tile_config(), in, out, weights, scales, 7);
  std::vector<float> input(in, 1.0f);
  std::mt19937_64 fwd(1);
  const auto clean = tile.forward(input, nullptr, fwd);

  device::DefectRates rates;
  rates.stuck_at_p = 0.15;
  rates.stuck_at_ap = 0.15;
  tile.inject_defects(rates, 99);
  const auto faulty = tile.forward(input, nullptr, fwd);
  double deviation = 0.0;
  for (std::size_t c = 0; c < out; ++c) {
    deviation += std::abs(faulty[c] - clean[c]);
  }
  EXPECT_GT(deviation, 0.5) << "30% stuck-at cells must visibly distort the MAC";
}

TEST(DenseTile, RejectsMismatchedSpans) {
  std::vector<float> weights(4, 1.0f);
  std::vector<float> scales(2, 1.0f);
  EXPECT_THROW(DenseTile(ideal_tile_config(), 3, 2, weights, scales, 1),
               std::invalid_argument);
}

// --------------------------------------------------------- event engine ----

/// A deliberately hostile design point for the bitwise contract: IR drop,
/// read noise, fine quantization and multi-block row folding all on.
TileConfig nonideal_tile_config(EvalMode mode) {
  TileConfig config;
  config.max_rows = 16;  // forces several blocks even on small tiles
  config.adc_bits = 10;
  config.read_noise_sigma = 0.05;
  config.eval_mode = mode;
  return config;
}

/// Two tiles that must stay bitwise-locked: same weights, scales, seed and
/// electrical design point, differing only in evaluation mode.
struct TilePair {
  DenseTile full;
  DenseTile event;
};

TilePair make_tile_pair(std::size_t in, std::size_t out, std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  std::vector<float> weights(in * out);
  for (auto& w : weights) {
    w = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::vector<float> scales(out);
  for (std::size_t c = 0; c < out; ++c) {
    scales[c] = 0.25f + 0.125f * static_cast<float>(c);
  }
  return TilePair{
      DenseTile(nonideal_tile_config(EvalMode::kFull), in, out, weights, scales, seed),
      DenseTile(nonideal_tile_config(EvalMode::kEventDriven), in, out, weights, scales,
                seed)};
}

TEST(EventEngine, BitwiseEqualToFullEvaluationUnderNonidealities) {
  const std::size_t in = 40;
  const std::size_t out = 6;
  TilePair pair = make_tile_pair(in, out, 11);

  device::DefectRates rates;
  rates.stuck_at_p = 0.02;
  rates.stuck_at_ap = 0.02;
  rates.open = 0.01;
  rates.short_circuit = 0.005;
  pair.full.inject_defects(rates, 77);
  pair.event.inject_defects(rates, 77);

  // Same seed per tile: read noise draws the identical stream whichever
  // mode computed the currents (the engine advance count is mode-free).
  std::mt19937_64 full_engine(3);
  std::mt19937_64 event_engine(3);
  std::mt19937_64 mutate(19);
  std::vector<float> input(in);
  for (auto& x : input) {
    x = (mutate() & 1) ? 1.0f : -1.0f;
  }
  std::vector<std::uint8_t> enabled(in, 1);

  for (int pass = 0; pass < 16; ++pass) {
    switch (pass % 4) {
      case 1:  // flip a handful of rows — the delta-friendly case
        for (int k = 0; k < 3; ++k) {
          input[mutate() % in] *= -1.0f;
        }
        break;
      case 2:  // bitwise repeat of the previous input — everything clean
        break;
      case 3:  // change the gating mask instead of the input
        enabled[mutate() % in] ^= 1;
        break;
      default:  // fresh input — everything dirty
        for (auto& x : input) {
          x = (mutate() & 1) ? 1.0f : -1.0f;
        }
        break;
    }
    energy::EnergyLedger full_ledger;
    energy::EnergyLedger event_ledger;
    const auto a = pair.full.forward_gated(input, enabled, &full_ledger, full_engine);
    const auto b = pair.event.forward_gated(input, enabled, &event_ledger, event_engine);
    for (std::size_t c = 0; c < out; ++c) {
      ASSERT_EQ(a[c], b[c]) << "pass " << pass << " column " << c
                            << ": event-driven output must be bitwise equal";
    }
    // The hardware drives every pass in full; energy must not notice the
    // simulator shortcut.
    EXPECT_EQ(full_ledger.count(energy::Component::kXbarCellRead),
              event_ledger.count(energy::Component::kXbarCellRead));
    EXPECT_EQ(full_ledger.count(energy::Component::kAdcConversion),
              event_ledger.count(energy::Component::kAdcConversion));
  }

  // The sequence contained repeats and small deltas, so the event tile
  // must have skipped real work while the full tile skipped none.
  EXPECT_GT(pair.event.delta_stats().skip_ratio(), 0.0);
  EXPECT_EQ(pair.full.delta_stats().rows_dirty, pair.full.delta_stats().rows_total);
}

TEST(EventEngine, DeltaStatsCountSkippedRows) {
  const std::size_t in = 24;
  const std::size_t out = 3;
  std::vector<float> weights(in * out, 1.0f);
  std::vector<float> scales(out, 1.0f);
  TileConfig config = ideal_tile_config();
  config.eval_mode = EvalMode::kEventDriven;
  DenseTile tile(config, in, out, weights, scales, 5);

  std::vector<float> input(in, 1.0f);
  std::mt19937_64 engine(1);
  (void)tile.forward(input, nullptr, engine);
  const DeltaStats cold = tile.delta_stats();
  EXPECT_EQ(cold.rows_dirty, cold.rows_total) << "first pass must rebuild everything";

  (void)tile.forward(input, nullptr, engine);
  const DeltaStats warm = tile.delta_stats();
  EXPECT_EQ(warm.rows_dirty, cold.rows_dirty)
      << "an identical input must re-propagate zero rows";
  EXPECT_EQ(warm.rows_total, 2 * cold.rows_total);
  EXPECT_DOUBLE_EQ(warm.skip_ratio(), 0.5);

  tile.reset_delta_stats();
  EXPECT_EQ(tile.delta_stats().rows_total, 0u);
  EXPECT_DOUBLE_EQ(tile.delta_stats().skip_ratio(), 0.0);
}

TEST(EventEngine, DefectInjectionInvalidatesDeltaCache) {
  const std::size_t in = 12;
  const std::size_t out = 4;
  TilePair pair = make_tile_pair(in, out, 23);

  std::mt19937_64 full_engine(2);
  std::mt19937_64 event_engine(2);
  std::vector<float> input(in, 1.0f);
  (void)pair.full.forward(input, nullptr, full_engine);
  (void)pair.event.forward(input, nullptr, event_engine);

  // Defects change conductances under unchanged voltages: a stale tree
  // would keep returning pre-defect currents for the "clean" rows.
  device::DefectRates rates;
  rates.stuck_at_p = 0.2;
  rates.stuck_at_ap = 0.2;
  pair.full.inject_defects(rates, 99);
  pair.event.inject_defects(rates, 99);

  const auto a = pair.full.forward(input, nullptr, full_engine);
  const auto b = pair.event.forward(input, nullptr, event_engine);
  for (std::size_t c = 0; c < out; ++c) {
    ASSERT_EQ(a[c], b[c]) << "post-defect pass must re-read every conductance";
  }
}

}  // namespace
}  // namespace neuspin::xbar
