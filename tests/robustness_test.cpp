// Robustness contracts (fault-tolerant serving + resumable training):
//
//  * nn::checkpoint rejects truncated / mangled / wrong-shape files with a
//    typed CheckpointError and NEVER half-loads a model.
//  * train::Trainer kill-and-resume is bitwise identical to the
//    uninterrupted run — final weights, optimizer moments, RNG streams —
//    across the {shards} x {workers} grid, including mid-epoch preemption.
//  * Deterministic fault injection: the fault schedule is a pure function
//    of (plan seed, forward ticket); a crashed worker's batch re-queues
//    exactly once and every completed answer matches the fault-free run's
//    bits per request seed (zero requests lost).
//  * Deadlines fail late requests typed BEFORE any forward work; the
//    retry helper backs off on kQueueFull and never retries kShutdown.
//  * Supervision rescues batches off stalled workers; the worker's
//    backend is re-cloned; nothing is answered twice.
//  * The cascade's circuit breaker degrades to the cheap rung (flagged)
//    under a failing expensive rung and recovers through half-open probes.
//  * Graceful-drain shutdown: drain=false sheds the backlog typed; a
//    drain timeout bounds the wait.
//  * Mid-serving inject_defects keeps event-driven and full tile
//    evaluation bitwise locked on live TiledBackends.
//  * Self-healing (serve::HealthConfig + xbar/health.h): a seeded defect
//    burst is detected by a scheduled canary probe within one probe
//    cadence, quarantined (cascade rung degraded, flagged) and healed by
//    spare-line remap — zero requests lost, post-heal answers bitwise
//    equal to the fault-free run.
//  * Graceful drain stays accountable under active chaos: every future
//    settles exactly once, shed futures carry the typed shutdown error,
//    and the drain timeout bounds the wall-clock wait.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fidelity.h"
#include "core/models.h"
#include "core/spindrop.h"
#include "data/strokes.h"
#include "device/defects.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "serve/backend.h"
#include "serve/batcher.h"
#include "serve/fault.h"
#include "serve/policy.h"
#include "serve/runtime.h"
#include "train/trainer.h"
#include "xbar/tile.h"

namespace {

using namespace neuspin;
using namespace std::chrono_literals;

// ------------------------------------------------------------- helpers ----

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "neuspin_robustness_" + name;
}

/// Snapshot every learnable scalar (bit pattern) of a model.
std::vector<std::uint32_t> param_bits(nn::Sequential& model) {
  std::vector<std::uint32_t> bits;
  for (const auto& p : model.parameters()) {
    for (std::size_t i = 0; i < p.value->numel(); ++i) {
      bits.push_back(std::bit_cast<std::uint32_t>((*p.value)[i]));
    }
  }
  for (nn::Tensor* t : model.state_tensors()) {
    for (std::size_t i = 0; i < t->numel(); ++i) {
      bits.push_back(std::bit_cast<std::uint32_t>((*t)[i]));
    }
  }
  return bits;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Small deterministic classification dataset.
nn::Dataset make_dataset(std::size_t samples, std::size_t features,
                         std::size_t classes, std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  nn::Dataset data;
  data.inputs = nn::Tensor::randn({samples, features}, 1.0f, engine);
  data.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    data.labels[i] = i % classes;
    data.inputs.at(i, data.labels[i] % features) += 2.0f;
  }
  return data;
}

/// MLP with every checkpointable stochastic flavour: per-sample masks
/// (Dropout, SpinDrop), batch-norm running statistics, and the layers'
/// own training engines.
nn::Sequential make_stochastic_mlp(std::size_t features, std::size_t classes,
                                   std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  nn::Sequential model;
  model.emplace<nn::Dense>(features, 16, engine);
  model.emplace<nn::BatchNorm>(16);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dropout>(0.25f, seed + 1);
  model.add(core::make_pseudo_spindrop(core::DropGranularity::kNeuron, 16, 0.2,
                                       seed + 2));
  model.emplace<nn::Dense>(16, classes, engine);
  return model;
}

core::BuiltModel tiny_model(core::Method method = core::Method::kSpinDrop) {
  core::ModelConfig mc;
  mc.method = method;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  return core::make_binary_mlp(mc, 256, {32, 16}, 10);
}

nn::Dataset tiny_dataset(std::uint64_t seed, std::size_t per_class = 2) {
  data::StrokeConfig sc;
  sc.samples_per_class = per_class;
  return data::standardize_per_sample(data::make_stroke_digits_flat(sc, seed));
}

std::vector<float> sample_row(const nn::Dataset& data, std::size_t i) {
  const nn::Tensor x = data.batch(i, i + 1).first;
  return std::vector<float>(x.data().begin(), x.data().end());
}

// ------------------------------------------------ checkpoint hardening ----

TEST(CheckpointHardening, TruncatedFileThrowsTypedAndLeavesModelIntact) {
  nn::Sequential model = make_stochastic_mlp(8, 3, 11);
  const std::string path = temp_path("trunc.nsp");
  nn::save_checkpoint(model, path);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  write_file(path, bytes.substr(0, bytes.size() / 2));

  nn::Sequential victim = make_stochastic_mlp(8, 3, 12);  // different bits
  const auto before = param_bits(victim);
  try {
    nn::load_checkpoint(victim, path);
    FAIL() << "truncated checkpoint must throw";
  } catch (const nn::CheckpointError& error) {
    EXPECT_EQ(error.fault(), nn::CheckpointFault::kTruncated)
        << nn::checkpoint_fault_name(error.fault());
  }
  EXPECT_EQ(param_bits(victim), before)
      << "failed load must not mutate the model (all-or-nothing)";
  std::remove(path.c_str());
}

TEST(CheckpointHardening, BadMagicThrowsTyped) {
  nn::Sequential model = make_stochastic_mlp(8, 3, 11);
  const std::string path = temp_path("magic.nsp");
  nn::save_checkpoint(model, path);
  std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 2u);
  bytes[0] = 'X';
  bytes[1] = 'X';
  write_file(path, bytes);
  try {
    nn::load_checkpoint(model, path);
    FAIL() << "mangled magic must throw";
  } catch (const nn::CheckpointError& error) {
    EXPECT_EQ(error.fault(), nn::CheckpointFault::kBadMagic);
  }
  std::remove(path.c_str());
}

TEST(CheckpointHardening, WrongShapeThrowsTypedAndLeavesModelIntact) {
  nn::Sequential narrow = make_stochastic_mlp(8, 3, 11);
  const std::string path = temp_path("shape.nsp");
  nn::save_checkpoint(narrow, path);

  nn::Sequential wide = make_stochastic_mlp(12, 3, 11);  // same depth, wider
  const auto before = param_bits(wide);
  try {
    nn::load_checkpoint(wide, path);
    FAIL() << "shape mismatch must throw";
  } catch (const nn::CheckpointError& error) {
    EXPECT_EQ(error.fault(), nn::CheckpointFault::kShapeMismatch);
  }
  EXPECT_EQ(param_bits(wide), before);
  std::remove(path.c_str());
}

TEST(CheckpointHardening, MissingFileThrowsIo) {
  nn::Sequential model = make_stochastic_mlp(8, 3, 11);
  try {
    nn::load_checkpoint(model, temp_path("does_not_exist.nsp"));
    FAIL() << "missing file must throw";
  } catch (const nn::CheckpointError& error) {
    EXPECT_EQ(error.fault(), nn::CheckpointFault::kIo);
  }
}

// ------------------------------------------------- resumable training ----

/// Train under `config`, killed after `preempt_steps` optimizer steps and
/// resumed from the checkpoint in a FRESH trainer + model (the killed
/// process's objects are destroyed). Returns the resumed model's final
/// bits; writes the final trainer snapshot to `final_snapshot`.
std::vector<std::uint32_t> killed_and_resumed_bits(
    const train::TrainerConfig& config, const nn::Dataset& data,
    std::uint64_t model_seed, std::size_t preempt_steps,
    const std::string& final_snapshot) {
  const std::string ckpt = temp_path("resume.trn");
  {
    nn::Sequential model =
        make_stochastic_mlp(data.inputs.dim(1), 3, model_seed);
    train::Trainer trainer(model, config);
    std::size_t steps = 0;
    trainer.set_preemption_check(
        [&steps, preempt_steps] { return ++steps >= preempt_steps; });
    (void)trainer.fit(data);
    EXPECT_TRUE(trainer.preempted());
    trainer.save(ckpt);
  }  // the "killed" process
  nn::Sequential model = make_stochastic_mlp(data.inputs.dim(1), 3, model_seed);
  train::Trainer trainer(model, config);
  trainer.restore(ckpt);
  (void)trainer.fit(data);
  EXPECT_FALSE(trainer.preempted());
  trainer.save(final_snapshot);
  std::remove(ckpt.c_str());
  return param_bits(model);
}

TEST(ResumableTraining, KillAndResumeBitwiseAcrossShardAndWorkerGrid) {
  const nn::Dataset data = make_dataset(30, 12, 3, 5);
  for (const std::size_t shards : std::array<std::size_t, 3>{1, 2, 5}) {
    for (const std::size_t workers : std::array<std::size_t, 2>{1, 4}) {
      train::TrainerConfig config;
      config.epochs = 2;
      config.batch_size = 8;  // 4 steps per epoch, ragged tail included
      config.shards = shards;
      config.workers = workers;
      config.shuffle_seed = 21;

      nn::Sequential reference = make_stochastic_mlp(12, 3, 33);
      train::Trainer uninterrupted(reference, config);
      (void)uninterrupted.fit(data);
      const std::string ref_snapshot = temp_path("ref.trn");
      uninterrupted.save(ref_snapshot);

      // Preempt after 5 steps: one full epoch (4 steps) plus one step into
      // the second — exercises the mid-epoch cursor, the partial epoch
      // stats and the cumulative shuffle order.
      const std::string resumed_snapshot = temp_path("resumed.trn");
      const auto resumed =
          killed_and_resumed_bits(config, data, 33, 5, resumed_snapshot);
      EXPECT_EQ(resumed, param_bits(reference))
          << "shards=" << shards << " workers=" << workers;
      // The snapshot files cover what param_bits cannot see: Adam moments
      // and step count, every RNG stream, the shuffle order. Byte-equal
      // files == bitwise-equal complete training state.
      EXPECT_EQ(read_file(resumed_snapshot), read_file(ref_snapshot))
          << "shards=" << shards << " workers=" << workers;
      std::remove(ref_snapshot.c_str());
      std::remove(resumed_snapshot.c_str());
    }
  }
}

TEST(ResumableTraining, RestoreRejectsConfigFingerprintMismatch) {
  const nn::Dataset data = make_dataset(16, 8, 3, 5);
  train::TrainerConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  nn::Sequential model = make_stochastic_mlp(8, 3, 3);
  train::Trainer trainer(model, config);
  (void)trainer.fit(data);
  const std::string path = temp_path("fingerprint.trn");
  trainer.save(path);

  train::TrainerConfig other = config;
  other.lr = config.lr * 2.0f;  // a numeric knob: it defines the bits
  nn::Sequential victim = make_stochastic_mlp(8, 3, 3);
  train::Trainer mismatched(victim, other);
  try {
    mismatched.restore(path);
    FAIL() << "restore under a different numeric config must throw";
  } catch (const nn::CheckpointError& error) {
    EXPECT_EQ(error.fault(), nn::CheckpointFault::kBadHeader);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------- fault injection ----

TEST(FaultInjector, ScheduleIsPureFunctionOfSeedAndTicket) {
  serve::FaultPlan plan;
  plan.enabled = true;
  plan.seed = 99;
  plan.crash_p = 0.2;
  plan.stall_p = 0.2;
  plan.defect_p = 0.1;
  plan.warmup = 3;
  plan.stop_after = 40;
  serve::FaultInjector a(plan);
  serve::FaultInjector b(plan);
  bool any_fault = false;
  for (int i = 0; i < 64; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    EXPECT_EQ(da.ticket, db.ticket);
    EXPECT_EQ(static_cast<int>(da.action), static_cast<int>(db.action));
    EXPECT_EQ(da.burst_seed, db.burst_seed);
    if (da.ticket < plan.warmup || da.ticket >= plan.stop_after) {
      EXPECT_EQ(static_cast<int>(da.action),
                static_cast<int>(serve::FaultInjector::Action::kNone))
          << "warmup/stop_after tickets never fault";
    }
    any_fault |= da.action != serve::FaultInjector::Action::kNone;
  }
  EXPECT_TRUE(any_fault);
  EXPECT_EQ(a.tickets(), 64u);
  EXPECT_EQ(a.crashes(), b.crashes());
  EXPECT_EQ(a.stalls(), b.stalls());
  EXPECT_EQ(a.bursts(), b.bursts());
}

TEST(FaultInjector, RejectsInvalidPlans) {
  serve::FaultPlan plan;
  plan.crash_p = 0.8;
  plan.stall_p = 0.3;  // sums above 1
  EXPECT_THROW(serve::FaultInjector{plan}, std::invalid_argument);
}

// ------------------------------------------------------------ batcher ----

TEST(Batcher, RequeuePreservesOrderAndWorksAfterClose) {
  serve::BatcherConfig config;
  config.max_batch = 8;
  config.max_linger = 0us;
  serve::Batcher batcher(config);
  for (std::uint64_t id = 0; id < 3; ++id) {
    serve::Request request;
    request.id = id;
    request.enqueued = std::chrono::steady_clock::now();
    batcher.push(std::move(request));
  }
  std::vector<serve::Request> batch = batcher.pop_batch();
  ASSERT_EQ(batch.size(), 3u);
  batcher.close();
  batcher.requeue(std::move(batch));  // admitted requests outlive close()
  std::vector<serve::Request> again = batcher.pop_batch();
  ASSERT_EQ(again.size(), 3u);
  for (std::uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(again[id].id, id) << "requeue must preserve FIFO order";
  }
  EXPECT_TRUE(batcher.pop_batch().empty()) << "closed and drained";
}

TEST(Batcher, ShedPendingEmptiesTheQueue) {
  serve::Batcher batcher(serve::BatcherConfig{});
  for (std::uint64_t id = 0; id < 4; ++id) {
    serve::Request request;
    request.id = id;
    request.enqueued = std::chrono::steady_clock::now();
    batcher.push(std::move(request));
  }
  std::vector<serve::Request> shed = batcher.shed_pending();
  EXPECT_EQ(shed.size(), 4u);
  EXPECT_EQ(batcher.pending(), 0u);
}

// ----------------------------------------------------- crash recovery ----

TEST(Runtime, CrashedBatchIsRequeuedOnceAndCompletesWithFaultFreeBits) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(31);
  constexpr std::size_t kRequests = 3;
  constexpr std::uint64_t kSeed = 4242;

  serve::RuntimeConfig clean;
  clean.workers = 1;
  clean.mc_samples = 4;
  clean.seed = kSeed;
  std::vector<std::vector<float>> reference;
  {
    serve::Runtime runtime(model, clean);
    for (std::size_t i = 0; i < kRequests; ++i) {
      reference.push_back(runtime.predict(sample_row(data, i)).probs);
    }
  }

  serve::RuntimeConfig chaotic = clean;
  chaotic.batcher.max_linger = 20ms;  // coalesce all three into one batch
  chaotic.fault.enabled = true;
  chaotic.fault.seed = 1;
  chaotic.fault.crash_p = 1.0;
  chaotic.fault.stop_after = 1;  // ONLY forward ticket 0 crashes
  serve::Runtime runtime(model, chaotic);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.submit(
        sample_row(data, i), serve::Runtime::request_stream_seed(kSeed, i)));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    const serve::ServedPrediction served = futures[i].get();  // must not throw
    EXPECT_EQ(served.probs, reference[i])
        << "retried request " << i << " must carry the fault-free bits";
  }
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_GE(stats.requeued, 1u) << "the crashed batch re-queues";
  EXPECT_GE(stats.worker_restarts, 1u) << "the crashed worker re-clones";
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_GE(runtime.metrics().counter("serve.fault.crashes").value(), 1u);
}

TEST(Runtime, SeededChaosLosesNoRequestAndCompletedBitsMatchFaultFree) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(32, 3);
  constexpr std::size_t kRequests = 24;
  constexpr std::uint64_t kSeed = 777;

  serve::RuntimeConfig clean;
  clean.workers = 2;
  clean.mc_samples = 3;
  clean.seed = kSeed;
  std::vector<std::vector<float>> reference;
  {
    serve::Runtime runtime(model, clean);
    for (std::size_t i = 0; i < kRequests; ++i) {
      reference.push_back(
          runtime
              .submit(sample_row(data, i % data.size()),
                      serve::Runtime::request_stream_seed(kSeed, i))
              .get()
              .probs);
    }
  }

  serve::RuntimeConfig chaotic = clean;
  chaotic.fault.enabled = true;
  chaotic.fault.crash_p = 0.25;
  chaotic.fault.stall_p = 0.15;
  chaotic.fault.stall = 2ms;
  // Batch composition (and so the tickets a given request draws) is a
  // scheduling accident, but the schedule per ticket is not: pick a plan
  // seed whose ticket 0 crashes, so the run deterministically exercises
  // the re-queue path no matter how the batches form.
  chaotic.fault.seed = 0;
  for (std::uint64_t s = 1; s < 256; ++s) {
    serve::FaultPlan probe_plan = chaotic.fault;
    probe_plan.seed = s;
    serve::FaultInjector probe(probe_plan);
    if (probe.next().action == serve::FaultInjector::Action::kCrash) {
      chaotic.fault.seed = s;
      break;
    }
  }
  ASSERT_NE(chaotic.fault.seed, 0u);

  serve::Runtime runtime(model, chaotic);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.submit(
        sample_row(data, i % data.size()),
        serve::Runtime::request_stream_seed(kSeed, i)));
  }
  std::size_t completed = 0;
  std::size_t failed_typed = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    try {
      const serve::ServedPrediction served = futures[i].get();
      EXPECT_EQ(served.probs, reference[i])
          << "request " << i
          << " completed with bits differing from the fault-free run";
      ++completed;
    } catch (const std::runtime_error&) {
      // A request whose first attempt AND retry both drew crash tickets
      // fails typed. Allowed — but never silent: every future settles,
      // nothing hangs, nothing is answered twice.
      ++failed_typed;
    }
  }
  EXPECT_EQ(completed + failed_typed, kRequests) << "zero requests lost";
  EXPECT_GT(completed, 0u);
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.requests, completed);
  EXPECT_GE(stats.requeued, 1u) << "ticket 0 crashes by seed selection";
  EXPECT_GE(stats.worker_restarts, 1u);
}

// -------------------------------------------------- deadlines + retry ----

TEST(Runtime, ExpiredDeadlineFailsTypedBeforeForwardWork) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(33);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 3;
  config.batcher.max_linger = 5ms;
  serve::Runtime runtime(model, config);

  auto late = runtime.submit(sample_row(data, 0), 7, 1us);
  try {
    (void)late.get();
    FAIL() << "a 1us deadline must expire in the queue";
  } catch (const serve::DeadlineExceeded& error) {
    EXPECT_EQ(error.request_id(), 0u);
    EXPECT_GT(error.overrun_us(), 0.0);
  }
  // An undeadlined companion is unaffected.
  const serve::ServedPrediction ok =
      runtime.submit(sample_row(data, 1), 8).get();
  EXPECT_FALSE(ok.probs.empty());
  EXPECT_EQ(runtime.stats().deadline_expired, 1u);
}

TEST(Runtime, PredictWithRetryBacksOffQueueFullAndSucceeds) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(34);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 3;
  config.max_queue_depth = 1;
  config.batcher.max_linger = 20ms;
  std::vector<float> expected;
  {
    serve::RuntimeConfig fast = config;
    fast.max_queue_depth = 0;
    fast.batcher.max_linger = 200us;
    serve::Runtime reference(model, fast);
    expected = reference.submit(sample_row(data, 1), 1234).get().probs;
  }

  serve::Runtime runtime(model, config);
  // The blocker fills the depth-1 queue and lingers for up to 20ms.
  auto blocker = runtime.submit(sample_row(data, 0), 5678);
  serve::RetryPolicy policy;
  policy.max_attempts = 8;
  const serve::ServedPrediction served =
      serve::predict_with_retry(runtime, sample_row(data, 1), 1234, policy);
  EXPECT_EQ(served.probs, expected)
      << "the retried answer must carry the exact no-shed bits";
  (void)blocker.get();
  EXPECT_GE(runtime.stats().shed_queue_full, 1u);
  EXPECT_GE(runtime.metrics().counter("serve.retry.attempts").value(), 1u);
}

TEST(Runtime, PredictWithRetryNeverRetriesShutdown) {
  const core::BuiltModel model = tiny_model();
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  serve::Runtime runtime(model, config);
  runtime.shutdown();
  const std::vector<float> features(256, 0.0f);
  try {
    (void)serve::predict_with_retry(runtime, features, 1);
    FAIL() << "kShutdown must propagate immediately";
  } catch (const serve::OverloadError& error) {
    EXPECT_EQ(error.reason(), serve::ShedReason::kShutdown);
  }
}

// -------------------------------------------------------- supervision ----

TEST(Runtime, SupervisorRescuesStalledWorkerBatch) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(35);
  constexpr std::uint64_t kSeed = 606;
  serve::RuntimeConfig clean;
  clean.workers = 1;
  clean.mc_samples = 3;
  clean.seed = kSeed;
  std::vector<std::vector<float>> reference;
  {
    serve::Runtime runtime(model, clean);
    for (std::size_t i = 0; i < 2; ++i) {
      reference.push_back(
          runtime
              .submit(sample_row(data, i),
                      serve::Runtime::request_stream_seed(kSeed, i))
              .get()
              .probs);
    }
  }

  serve::RuntimeConfig stalled = clean;
  stalled.batcher.max_linger = 5ms;
  stalled.fault.enabled = true;
  stalled.fault.seed = 3;
  stalled.fault.stall_p = 1.0;
  stalled.fault.stall = 120ms;
  stalled.fault.stop_after = 1;  // only the first forward stalls
  stalled.supervision.enabled = true;
  stalled.supervision.heartbeat = 2ms;
  stalled.supervision.stall_timeout = 15ms;
  serve::Runtime runtime(model, stalled);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < 2; ++i) {
    futures.push_back(runtime.submit(
        sample_row(data, i), serve::Runtime::request_stream_seed(kSeed, i)));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(futures[i].get().probs, reference[i])
        << "rescued request " << i << " must carry the fault-free bits";
  }
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_GE(stats.worker_stalls, 1u);
  EXPECT_GE(stats.requeued, 1u);
  EXPECT_GE(stats.worker_restarts, 1u) << "a deposed worker re-clones";
  EXPECT_EQ(stats.requests, 2u) << "nothing lost, nothing answered twice";
}

// ---------------------------------------------------- circuit breaker ----

TEST(BreakerCore, StateMachineTripsCoolsAndRecovers) {
  serve::BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = 2;
  config.open_cooldown = 2;
  config.half_open_probes = 1;
  serve::BreakerCore breaker(config);
  using State = serve::BreakerCore::State;

  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), State::kClosed) << "one failure below threshold";
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.allow()) << "cooldown 2 -> 1: still open";
  EXPECT_TRUE(breaker.allow()) << "cooldown exhausted: this is the probe";
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), State::kOpen) << "a failed probe reopens";
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.allow());
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), State::kClosed) << "a successful probe closes";
  // Interleaved failures below the threshold never trip a closed breaker.
  breaker.record_failure();
  breaker.record_success();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(Runtime, BreakerDegradesToCheapRungAndRecoversHalfOpen) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(36);
  constexpr std::uint64_t kSeed = 4040;
  constexpr std::size_t kMc = 3;
  constexpr std::size_t kRequests = 6;

  // Reference: the cheap rung alone — degraded answers must carry ITS bits.
  std::vector<std::vector<float>> cheap_bits;
  {
    serve::RuntimeConfig behavioral;
    behavioral.backend = serve::Backend::kBehavioral;
    behavioral.workers = 1;
    behavioral.mc_samples = kMc;
    serve::Runtime runtime(model, behavioral);
    for (std::size_t i = 0; i < kRequests; ++i) {
      cheap_bits.push_back(
          runtime
              .submit(sample_row(data, i % data.size()),
                      serve::Runtime::request_stream_seed(kSeed, i))
              .get()
              .probs);
    }
  }

  serve::RuntimeConfig config;
  config.backend = serve::Backend::kCascade;
  config.workers = 1;
  config.mc_samples = kMc;
  config.cascade.entropy_threshold = 0.0;  // every request wants the tiled rung
  config.cascade.breaker.enabled = true;
  config.cascade.breaker.failure_threshold = 2;
  config.cascade.breaker.open_cooldown = 3;
  config.cascade.breaker.half_open_probes = 1;
  config.fault.enabled = true;
  config.fault.seed = 8;
  config.fault.crash_p = 1.0;
  config.fault.stop_after = 2;  // rung tickets 0 and 1 crash, then healed
  config.fault_site = serve::FaultSite::kExpensiveRung;
  serve::Runtime runtime(model, config);

  // Serial submits on one worker make the breaker sequence deterministic:
  // 1-2 rung crashes (degraded; the breaker trips at two), 3-4 denied by
  // the open breaker (degraded, no rung ticket spent), 5 is the half-open
  // probe on healed ticket 2 (escalated), 6 closed (escalated).
  std::vector<serve::ServedPrediction> served;
  for (std::size_t i = 0; i < kRequests; ++i) {
    served.push_back(
        runtime
            .submit(sample_row(data, i % data.size()),
                    serve::Runtime::request_stream_seed(kSeed, i))
            .get());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(served[i].degraded) << "request " << i;
    EXPECT_FALSE(served[i].escalated) << "request " << i;
    EXPECT_EQ(served[i].probs, cheap_bits[i])
        << "degraded request " << i << " must serve the cheap rung's bits";
  }
  for (std::size_t i = 4; i < kRequests; ++i) {
    EXPECT_FALSE(served[i].degraded) << "request " << i;
    EXPECT_TRUE(served[i].escalated) << "request " << i;
  }
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.degraded, 4u);
  EXPECT_EQ(stats.escalated, 2u);
  EXPECT_EQ(runtime.metrics().counter("serve.breaker.opened").value(), 1u);
  EXPECT_GE(runtime.metrics().counter("serve.breaker.probes").value(), 1u);
  EXPECT_EQ(runtime.metrics().gauge("serve.breaker.state").value(), 0.0)
      << "recovered: closed again";
}

// ----------------------------------------------------- drain shutdown ----

TEST(Runtime, NoDrainShutdownShedsBacklogTyped) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(37);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  config.batcher.max_linger = 200ms;  // the backlog lingers until shutdown
  serve::Runtime runtime(model, config);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i)));
  }
  serve::Runtime::ShutdownOptions options;
  options.drain = false;
  runtime.shutdown(options);
  std::size_t shed = 0;
  for (auto& future : futures) {
    try {
      (void)future.get();
    } catch (const serve::OverloadError& error) {
      EXPECT_EQ(error.reason(), serve::ShedReason::kShutdown);
      ++shed;
    }
  }
  EXPECT_EQ(shed, 3u) << "a lingering backlog sheds typed on no-drain shutdown";
  EXPECT_EQ(runtime.metrics().counter("serve.drain.shed").value(), 3u);
}

TEST(Runtime, DrainTimeoutShedsWhatTheBudgetCannotServe) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(38, 3);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  config.batcher.max_batch = 1;  // one request per pop: the stalls serialize
  config.fault.enabled = true;
  config.fault.seed = 11;
  config.fault.stall_p = 1.0;
  config.fault.stall = 30ms;  // every batch takes >= 30ms
  serve::Runtime runtime(model, config);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i)));
  }
  serve::Runtime::ShutdownOptions options;
  options.drain = true;
  options.drain_timeout = 10ms;  // can serve at most a request or two
  runtime.shutdown(options);
  std::size_t served = 0;
  std::size_t shed = 0;
  for (auto& future : futures) {
    try {
      (void)future.get();
      ++served;
    } catch (const serve::OverloadError& error) {
      EXPECT_EQ(error.reason(), serve::ShedReason::kShutdown);
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, 6u) << "every future settles";
  EXPECT_GT(shed, 0u) << "a 10ms budget cannot drain 6 x 30ms batches";
}

// --------------------------------------- mid-serving defect injection ----

TEST(TiledBackend, MidServingDefectBurstKeepsEventAndFullBitwiseLocked) {
  core::BuiltModel model = tiny_model();
  core::TiledBackendConfig full_config;
  full_config.mc_samples = 2;
  full_config.tile.eval_mode = xbar::EvalMode::kFull;
  core::TiledBackendConfig event_config = full_config;
  event_config.tile.eval_mode = xbar::EvalMode::kEventDriven;
  core::TiledBackend full(model.net, full_config);
  core::TiledBackend event(model.net, event_config);

  const nn::Dataset data = tiny_dataset(39);
  const nn::Tensor inputs = data.batch(0, 3).first;
  const std::vector<std::uint64_t> seeds = {11, 22, 33};

  const auto expect_equal = [&](const char* when) {
    const core::BackendBatch a = full.forward(inputs, seeds, nullptr);
    const core::BackendBatch b = event.forward(inputs, seeds, nullptr);
    ASSERT_EQ(a.predictions.size(), b.predictions.size());
    for (std::size_t r = 0; r < a.predictions.size(); ++r) {
      const nn::Tensor& pa = a.predictions[r].mean_probs;
      const nn::Tensor& pb = b.predictions[r].mean_probs;
      ASSERT_EQ(pa.numel(), pb.numel());
      for (std::size_t c = 0; c < pa.numel(); ++c) {
        ASSERT_EQ(pa[c], pb[c]) << when << ": row " << r << " class " << c;
      }
    }
  };

  expect_equal("before the burst");
  // The burst lands BETWEEN batches on the live backends — the event
  // engine's delta caches hold state from the previous batch and must
  // invalidate, not reuse, the pre-defect currents.
  device::DefectRates rates;
  rates.stuck_at_p = 0.03;
  rates.stuck_at_ap = 0.03;
  rates.open = 0.01;
  full.inject_defects(rates, 515);
  event.inject_defects(rates, 515);
  expect_equal("after the burst");
  expect_equal("steady state after the burst");
}

// -------------------------------------------------------- self-healing ----

/// Find a fault-plan seed whose ticket-0 defect burst on the plan's target
/// tile is both DETECTED by a canary probe and REPAIRABLE within the
/// provisioned spare lines — established offline on a simulation replica
/// built exactly the way Runtime::make_backend builds the worker's tiled
/// substrate, so the serving tests below exercise the full
/// detect -> quarantine -> remap -> recover path deterministically (no
/// restart fallback, no undetectable no-op burst).
std::uint64_t repairable_burst_seed(const core::BuiltModel& model,
                                    const serve::RuntimeConfig& config) {
  for (std::uint64_t seed = 1; seed <= 128; ++seed) {
    serve::FaultPlan plan = config.fault;
    plan.seed = seed;
    serve::FaultInjector probe(plan);
    const serve::FaultInjector::Decision decision = probe.next();
    if (decision.action != serve::FaultInjector::Action::kDefectBurst) {
      continue;
    }
    core::TiledBackendConfig sim_config;
    sim_config.tile = config.tile;
    sim_config.tile_seed = config.tile_seed;
    sim_config.mc_samples = config.mc_samples;
    core::BuiltModel staging = model.clone();
    core::TiledBackend sim(staging.net, sim_config);
    sim.inject_defects_at(static_cast<std::size_t>(config.fault.defect_tile),
                          config.fault.defect_rates, decision.burst_seed);
    if (sim.check_health(config.health.probe).healthy()) {
      continue;  // the burst drew no effective defect: nothing to detect
    }
    if (!sim.heal(config.health.probe).healthy_after) {
      continue;  // the damage exceeds the spare budget
    }
    return seed;
  }
  return 0;
}

/// Tiled serving with health monitoring on and a single seeded defect
/// burst aimed at the classifier tile on forward ticket 0.
serve::RuntimeConfig self_healing_config(std::uint64_t request_seed_base) {
  serve::RuntimeConfig config;
  config.backend = serve::Backend::kTiled;
  config.workers = 1;
  config.mc_samples = 2;
  config.seed = request_seed_base;
  config.tile.crossbar.spare_rows = 4;
  config.tile.crossbar.spare_cols = 4;
  config.health.enabled = true;
  config.health.probe_every = 1;
  config.fault.enabled = true;
  config.fault.defect_p = 1.0;
  config.fault.stop_after = 1;   // exactly one burst, on forward ticket 0
  config.fault.defect_tile = 2;  // the 16 x 10 classifier tile
  config.fault.defect_rates.open = 0.01;
  config.fault.defect_rates.stuck_at_ap = 0.01;
  return config;
}

TEST(Runtime, SelfHealingDetectsSeededBurstHealsAndLosesNoRequest) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(41, 3);
  constexpr std::size_t kRequests = 8;
  constexpr std::uint64_t kSeed = 909;

  serve::RuntimeConfig config = self_healing_config(kSeed);
  config.fault.seed = repairable_burst_seed(model, config);
  ASSERT_NE(config.fault.seed, 0u);

  // Fault-free reference bits (monitoring off, no faults: same substrate).
  std::vector<std::vector<float>> reference;
  {
    serve::RuntimeConfig clean = config;
    clean.fault = {};
    clean.health.enabled = false;
    serve::Runtime runtime(model, clean);
    for (std::size_t i = 0; i < kRequests; ++i) {
      reference.push_back(
          runtime
              .submit(sample_row(data, i % data.size()),
                      serve::Runtime::request_stream_seed(kSeed, i))
              .get()
              .probs);
    }
  }

  serve::Runtime runtime(model, config);
  std::vector<serve::ServedPrediction> served;
  for (std::size_t i = 0; i < kRequests; ++i) {
    // Serial submits: request 0 rides the burst batch; the probe scheduled
    // right after that batch must detect and heal before request 1 runs.
    served.push_back(
        runtime
            .submit(sample_row(data, i % data.size()),
                    serve::Runtime::request_stream_seed(kSeed, i))
            .get());
  }
  // Request 0 was computed on the freshly-damaged substrate — inside the
  // detection window its bits may differ. Everything after the first
  // probe's heal is bitwise equal to the fault-free run.
  for (std::size_t i = 1; i < kRequests; ++i) {
    EXPECT_EQ(served[i].probs, reference[i])
        << "request " << i << " served after the heal must carry clean bits";
  }
  // Join the workers first: the probe after the LAST batch runs on the
  // worker thread after the final future resolves.
  runtime.shutdown();
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.requests, kRequests) << "zero requests lost to healing";
  EXPECT_EQ(stats.health_probes, kRequests) << "probe_every=1: one per batch";
  EXPECT_EQ(stats.health_failures, 1u);
  EXPECT_EQ(stats.heals, 1u);
  EXPECT_EQ(stats.worker_restarts, 0u)
      << "the seed was chosen repairable in-place: no chip-swap fallback";
  EXPECT_EQ(stats.health_score, 1.0) << "healed back to pristine";
  EXPECT_GE(runtime.metrics().counter("xbar.remap.rows").value() +
                runtime.metrics().counter("xbar.remap.cols").value(),
            1u)
      << "the heal remapped at least one quarantined line onto a spare";
  EXPECT_EQ(runtime.metrics().counter("xbar.remap.exhausted").value(), 0u);
  EXPECT_EQ(runtime.metrics().counter("xbar.health.canary_failures").value(), 1u);
}

TEST(Runtime, DetectionLatencyIsBoundedByProbeCadence) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(44, 3);
  constexpr std::size_t kRequests = 9;
  constexpr std::uint64_t kSeed = 1213;
  constexpr std::uint64_t kProbeEvery = 3;

  serve::RuntimeConfig config = self_healing_config(kSeed);
  config.health.probe_every = kProbeEvery;
  config.fault.seed = repairable_burst_seed(model, config);
  ASSERT_NE(config.fault.seed, 0u);

  std::vector<std::vector<float>> reference;
  {
    serve::RuntimeConfig clean = config;
    clean.fault = {};
    clean.health.enabled = false;
    serve::Runtime runtime(model, clean);
    for (std::size_t i = 0; i < kRequests; ++i) {
      reference.push_back(
          runtime
              .submit(sample_row(data, i % data.size()),
                      serve::Runtime::request_stream_seed(kSeed, i))
              .get()
              .probs);
    }
  }

  serve::Runtime runtime(model, config);
  std::vector<serve::ServedPrediction> served;
  for (std::size_t i = 0; i < kRequests; ++i) {
    served.push_back(
        runtime
            .submit(sample_row(data, i % data.size()),
                    serve::Runtime::request_stream_seed(kSeed, i))
            .get());
  }
  runtime.shutdown();  // join workers: the last probe trails the last future
  const serve::RuntimeStats stats = runtime.stats();
  // The burst lands on batch ticket 1; probes run at tickets 3, 6, 9. The
  // FIRST scheduled probe catches it — detection latency is the probe
  // cadence, never more — and every later probe sees the healed substrate.
  EXPECT_EQ(stats.health_probes, kRequests / kProbeEvery);
  EXPECT_EQ(stats.health_failures, 1u)
      << "exactly the first post-burst probe fails";
  EXPECT_EQ(stats.heals, 1u);
  EXPECT_EQ(stats.health_score, 1.0);
  // Requests inside the detection window (served before probe ticket 3)
  // may carry damaged bits; every request after the heal is clean.
  for (std::size_t i = kProbeEvery; i < kRequests; ++i) {
    EXPECT_EQ(served[i].probs, reference[i])
        << "request " << i << " follows the heal and must serve clean bits";
  }
}

TEST(Runtime, FailedProbeQuarantinesRungDegradesTypedThenRecovers) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(45);
  constexpr std::uint64_t kSeed = 5050;
  constexpr std::size_t kMc = 3;
  constexpr std::size_t kRequests = 5;

  // Cheap-rung reference: degraded answers must carry ITS bits.
  std::vector<std::vector<float>> cheap_bits;
  {
    serve::RuntimeConfig behavioral;
    behavioral.backend = serve::Backend::kBehavioral;
    behavioral.workers = 1;
    behavioral.mc_samples = kMc;
    serve::Runtime runtime(model, behavioral);
    for (std::size_t i = 0; i < kRequests; ++i) {
      cheap_bits.push_back(
          runtime
              .submit(sample_row(data, i % data.size()),
                      serve::Runtime::request_stream_seed(kSeed, i))
              .get()
              .probs);
    }
  }

  serve::RuntimeConfig config = self_healing_config(kSeed);
  config.backend = serve::Backend::kCascade;
  config.mc_samples = kMc;
  config.cascade.entropy_threshold = 0.0;  // every request wants the rung
  config.cascade.breaker.enabled = true;
  config.cascade.breaker.failure_threshold = 5;  // only the quarantine opens
  config.cascade.breaker.open_cooldown = 2;
  config.cascade.breaker.half_open_probes = 1;
  config.fault_site = serve::FaultSite::kExpensiveRung;
  config.fault.seed = repairable_burst_seed(model, config);
  ASSERT_NE(config.fault.seed, 0u);
  serve::Runtime runtime(model, config);

  // Serial submits on one worker pin the sequence: request 0 escalates and
  // its rung forward draws the burst; the probe after the batch fails the
  // canary, quarantines the rung (breaker forced open) and heals the
  // substrate in place. Request 1 is denied by the open breaker — cheap
  // bits, flagged degraded. Request 2 is the half-open probe on the healed
  // rung (escalated; the success closes the breaker); 3 and 4 escalate
  // normally.
  std::vector<serve::ServedPrediction> served;
  for (std::size_t i = 0; i < kRequests; ++i) {
    served.push_back(
        runtime
            .submit(sample_row(data, i % data.size()),
                    serve::Runtime::request_stream_seed(kSeed, i))
            .get());
  }
  EXPECT_TRUE(served[0].escalated);
  EXPECT_FALSE(served[0].degraded);
  EXPECT_TRUE(served[1].degraded)
      << "the quarantined rung must degrade, not serve damaged bits";
  EXPECT_FALSE(served[1].escalated);
  EXPECT_EQ(served[1].probs, cheap_bits[1])
      << "a degraded answer carries the cheap rung's exact bits";
  for (std::size_t i = 2; i < kRequests; ++i) {
    EXPECT_TRUE(served[i].escalated) << "request " << i << " (healed rung)";
    EXPECT_FALSE(served[i].degraded) << "request " << i;
  }
  runtime.shutdown();  // join workers: the last probe trails the last future
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.health_failures, 1u);
  EXPECT_EQ(stats.heals, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.escalated, kRequests - 1);
  EXPECT_EQ(stats.health_score, 1.0);
  EXPECT_EQ(runtime.metrics().counter("serve.breaker.opened").value(), 1u);
  EXPECT_EQ(runtime.metrics().gauge("serve.breaker.state").value(), 0.0)
      << "recovered: the half-open probe observed the healed rung";
}

TEST(Runtime, DrainTimeoutUnderActiveChaosAccountsEveryRequest) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(46, 3);
  constexpr std::size_t kRequests = 12;
  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 2;
  config.batcher.max_batch = 1;  // one request per pop: the stalls serialize
  config.fault.enabled = true;
  config.fault.seed = 99;
  config.fault.crash_p = 0.25;
  config.fault.stall_p = 0.75;  // every ticket faults: crash or 20ms stall
  config.fault.stall = 20ms;
  serve::Runtime runtime(model, config);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i % data.size())));
  }
  serve::Runtime::ShutdownOptions options;
  options.drain = true;
  options.drain_timeout = 30ms;  // far less than 12 x 20ms of stalls
  const auto begin = std::chrono::steady_clock::now();
  runtime.shutdown(options);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, 2s) << "the drain timeout bounds the shutdown wait";

  // Chaos accounting: every future settles exactly once — served, shed
  // typed by the drain budget, or failed typed by a double-crash. Nothing
  // hangs, nothing is silently dropped.
  std::size_t served = 0;
  std::size_t shed = 0;
  std::size_t failed_typed = 0;
  for (auto& future : futures) {
    try {
      (void)future.get();
      ++served;
    } catch (const serve::OverloadError& error) {
      EXPECT_EQ(error.reason(), serve::ShedReason::kShutdown);
      ++shed;
    } catch (const std::runtime_error&) {
      ++failed_typed;  // first attempt AND its one retry both crashed
    }
  }
  EXPECT_EQ(served + shed + failed_typed, kRequests) << "zero requests lost";
  EXPECT_GT(shed, 0u) << "a 30ms budget cannot drain 12 x 20ms batches";
  EXPECT_EQ(runtime.metrics().counter("serve.drain.shed").value(), shed)
      << "the shed counter matches the typed shed futures one for one";
}

}  // namespace
