// Observability: the metrics registry and the span tracer must observe
// without distorting — histogram quantiles stay within the log-bucket
// error bound of the exact order statistics on adversarial distributions,
// concurrent recording merges exactly, spans nest and export well-formed
// Chrome trace JSON, and none of it may ever touch an RNG stream (the
// serving tests pin the bitwise on/off contract; here we pin the
// instruments themselves).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace neuspin;

// ------------------------------------------------------------- histogram

/// Exact linear-interpolated quantile of a sorted sample (the reference
/// the histogram estimate is judged against).
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  std::mt19937_64 engine(11);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 2000; ++i) {
    const double value = std::ldexp(1.0 + u(engine), engine() % 38);
    const std::size_t index = obs::Histogram::bucket_index(value);
    EXPECT_LE(obs::Histogram::bucket_lower(index), value);
    EXPECT_LT(value, obs::Histogram::bucket_upper(index));
  }
  // Sub-unit, negative and NaN values share bucket 0.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(0.999), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(std::nan("")), 0u);
  // The overflow bucket catches everything at or past 2^40.
  EXPECT_EQ(obs::Histogram::bucket_index(std::ldexp(1.0, 40)),
            obs::Histogram::kBuckets - 1);
}

TEST(Histogram, QuantilesTrackExactReferenceOnAdversarialDistributions) {
  std::mt19937_64 engine(42);
  const auto uniform = [&] {
    std::uniform_real_distribution<double> d(1.0, 1e6);
    return d(engine);
  };
  const auto heavy_tail = [&] {
    // Pareto-ish: most mass near 1, a tail spanning 6 decades.
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return std::pow(10.0, 6.0 * std::pow(d(engine), 4.0));
  };
  const auto bimodal = [&] {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(engine) < 0.5 ? 10.0 + d(engine) : 1e5 + 1e4 * d(engine);
  };
  const auto near_constant = [&] {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return 1000.0 + (d(engine) < 0.01 ? 5e5 : 0.0);  // 1% outliers
  };
  const std::vector<std::function<double()>> generators = {uniform, heavy_tail,
                                                           bimodal, near_constant};
  for (const auto& gen : generators) {
    obs::Histogram hist;
    std::vector<double> values(20000);
    for (double& v : values) {
      v = gen();
      hist.record(v);
    }
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      const double exact = exact_quantile(values, q);
      const double estimate = hist.quantile(q);
      // One sub-bucket of relative error (1/32), plus slack for rank
      // interpolation differing between the two estimators.
      EXPECT_NEAR(estimate, exact, exact * 0.05)
          << "q=" << q << " exact=" << exact << " estimate=" << estimate;
    }
    // Estimates never leave the observed range.
    const obs::HistogramSnapshot snap = hist.snapshot();
    EXPECT_GE(hist.quantile(0.0), snap.min);
    EXPECT_LE(hist.quantile(1.0), snap.max);
  }
}

TEST(Histogram, QuantileOfSingleValueIsThatValue) {
  obs::Histogram hist;
  hist.record(1234.5);
  // The clamp to [min, max] makes point distributions exact.
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 1234.5);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 1234.5);
}

TEST(Histogram, MergeIsExactElementwiseAdd) {
  std::mt19937_64 engine(7);
  std::uniform_real_distribution<double> d(1.0, 1e5);
  obs::Histogram a;
  obs::Histogram b;
  obs::Histogram combined;
  for (int i = 0; i < 5000; ++i) {
    const double va = d(engine);
    const double vb = d(engine);
    a.record(va);
    b.record(vb);
    combined.record(va);
    combined.record(vb);
  }
  a.merge(b);
  const obs::HistogramSnapshot merged = a.snapshot();
  const obs::HistogramSnapshot direct = combined.snapshot();
  EXPECT_EQ(merged.buckets, direct.buckets);
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_DOUBLE_EQ(merged.min, direct.min);
  EXPECT_DOUBLE_EQ(merged.max, direct.max);
  EXPECT_NEAR(merged.sum, direct.sum, std::abs(direct.sum) * 1e-12);
}

TEST(Histogram, ConcurrentRecordingEqualsSerialRecording) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  obs::Histogram concurrent;
  obs::Histogram serial;
  // Deterministic per-thread sequences; the serial reference records the
  // same multiset of values single-threaded.
  std::vector<std::vector<double>> sequences(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    std::mt19937_64 engine(100 + t);
    std::uniform_real_distribution<double> d(1.0, 1e6);
    sequences[t].resize(kPerThread);
    for (double& v : sequences[t]) {
      v = d(engine);
      serial.record(v);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, &sequences, t] {
      for (const double v : sequences[t]) {
        concurrent.record(v);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const obs::HistogramSnapshot got = concurrent.snapshot();
  const obs::HistogramSnapshot want = serial.snapshot();
  // Bucket counts and extrema are integer/CAS-exact under concurrency;
  // the sum is a float accumulation whose order varies, so compare it
  // with relative tolerance.
  EXPECT_EQ(got.buckets, want.buckets);
  EXPECT_EQ(got.count, want.count);
  EXPECT_DOUBLE_EQ(got.min, want.min);
  EXPECT_DOUBLE_EQ(got.max, want.max);
  EXPECT_NEAR(got.sum, want.sum, std::abs(want.sum) * 1e-9);
}

TEST(Histogram, SnapshotSubtractionYieldsTheWindow) {
  obs::Histogram hist;
  for (int i = 0; i < 100; ++i) {
    hist.record(10.0);
  }
  const obs::HistogramSnapshot before = hist.snapshot();
  for (int i = 0; i < 50; ++i) {
    hist.record(5000.0);
  }
  obs::HistogramSnapshot window = hist.snapshot();
  window -= before;
  EXPECT_EQ(window.count, 50u);
  EXPECT_NEAR(window.sum, 50 * 5000.0, 1e-6);
  // Every windowed value is 5000: the quantile lands in its bucket.
  const double p50 = window.quantile(0.5);
  EXPECT_GE(p50, 5000.0 * (1.0 - 1.0 / 32.0));
  EXPECT_LE(p50, 5000.0 * (1.0 + 1.0 / 16.0));
}

TEST(Histogram, NegativeAndNanClampToZero) {
  obs::Histogram hist;
  hist.record(-42.0);
  hist.record(std::nan(""));
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

// -------------------------------------------------------------- registry

TEST(Registry, CreatesOnFirstUseWithStableAddresses) {
  obs::Registry registry;
  obs::Counter& c1 = registry.counter("requests");
  c1.inc(3);
  EXPECT_EQ(&registry.counter("requests"), &c1);
  EXPECT_EQ(registry.counter("requests").value(), 3u);
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  ASSERT_NE(registry.find_counter("requests"), nullptr);
  EXPECT_EQ(registry.find_counter("requests")->value(), 3u);

  registry.gauge("depth").set(4.5);
  EXPECT_DOUBLE_EQ(registry.find_gauge("depth")->value(), 4.5);
  registry.gauge("depth").add(0.5);
  EXPECT_DOUBLE_EQ(registry.find_gauge("depth")->value(), 5.0);

  registry.histogram("latency").record(12.0);
  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms.front().first, "latency");
  EXPECT_EQ(snap.histograms.front().second.count, 1u);
}

TEST(Registry, RenderPrometheusShape) {
  obs::Registry registry;
  registry.counter("serve.requests").inc(5);
  registry.gauge("serve.queue_depth").set(2.0);
  registry.histogram("serve.latency.total_us").record(150.0);
  const std::string text = obs::render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(text.find("serve_requests 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_latency_total_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_total_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_total_us_count 1"), std::string::npos);
}

TEST(Registry, RenderJsonShape) {
  obs::Registry registry;
  registry.counter("requests").inc(2);
  registry.histogram("latency").record(100.0);
  const std::string json = obs::render_json(registry);
  EXPECT_NE(json.find("\"counters\":{\"requests\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(Registry, PeriodicReporterInvokesSinkAndStops) {
  obs::Registry registry;
  registry.counter("ticks").inc();
  std::atomic<int> invocations{0};
  {
    obs::PeriodicReporter reporter(
        registry, std::chrono::milliseconds(5),
        [&invocations](const obs::Registry&) { invocations.fetch_add(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }  // ~PeriodicReporter stops and joins
  EXPECT_GE(invocations.load(), 1);
  const int after_stop = invocations.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(invocations.load(), after_stop);
}

// ---------------------------------------------------------------- tracer

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer tracer;  // default config: disabled
  {
    obs::ScopedSpan span(&tracer, "work", "test");
    EXPECT_FALSE(span.active());
    span.arg("ignored", 1.0);
  }
  EXPECT_EQ(tracer.span_count(), 0u);
  // A null tracer is equally inert.
  obs::ScopedSpan null_span(nullptr, "work", "test");
  EXPECT_FALSE(null_span.active());
}

TEST(Tracer, SamplingGatesPerRequestSpans) {
  obs::TraceConfig config;
  config.enabled = true;
  config.sample_every = 3;
  const obs::Tracer tracer(config);
  EXPECT_TRUE(tracer.sampled(0));
  EXPECT_FALSE(tracer.sampled(1));
  EXPECT_FALSE(tracer.sampled(2));
  EXPECT_TRUE(tracer.sampled(3));
}

TEST(Tracer, NestedSpansNestInTime) {
  obs::TraceConfig config;
  config.enabled = true;
  obs::Tracer tracer(config);
  {
    obs::ScopedSpan outer(&tracer, "outer", "test");
    {
      obs::ScopedSpan inner(&tracer, "inner", "test");
      inner.arg("depth", 1.0);
    }
  }
  const std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // The inner span completes first (RAII order), so it records first.
  const obs::SpanRecord& inner = spans[0];
  const obs::SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.track, outer.track);  // same thread
  EXPECT_LE(outer.begin_us, inner.begin_us);
  EXPECT_LE(inner.begin_us, inner.end_us);
  EXPECT_LE(inner.end_us, outer.end_us);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args.front().first, "depth");
}

TEST(Tracer, ExplicitTracksAndTimestampConversion) {
  obs::TraceConfig config;
  config.enabled = true;
  obs::Tracer tracer(config);
  const auto t0 = std::chrono::steady_clock::now();
  tracer.record({"request", "serve", tracer.to_us(t0), tracer.now_us(),
                 obs::Tracer::kRequestTrackBase + 7, {}, {}});
  const std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.front().track, obs::Tracer::kRequestTrackBase + 7);
  EXPECT_LE(spans.front().begin_us, spans.front().end_us);
}

TEST(Tracer, MaxSpansDropsInsteadOfGrowing) {
  obs::TraceConfig config;
  config.enabled = true;
  config.max_spans = 4;
  obs::Tracer tracer(config);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span(&tracer, "s" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ChromeTraceJsonShape) {
  obs::TraceConfig config;
  config.enabled = true;
  obs::Tracer tracer(config);
  {
    obs::ScopedSpan span(&tracer, "forward \"quoted\"", "serve");
    span.arg("rows", 3.0);
    span.arg("backend", std::string("behavioral"));
  }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("forward \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":3.000000"), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"behavioral\""), std::string::npos);
  // dur is non-negative for every X event.
  EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);
}

}  // namespace
