// Bit-packed XNOR/popcount kernels, SIMD dispatch and the binary-layer
// inference cache: bitwise-equivalence pins against the float oracle, the
// ragged-K pad-lane grid, tier equivalence, patch-cache neutrality, and
// the training-untouched / repack-on-mutate contracts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "core/bayesian.h"
#include "core/models.h"
#include "nn/binarize.h"
#include "nn/bitpack.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "obs/metrics.h"

namespace neuspin::nn {
namespace {

// The ragged-K grid of the pad-lane masking pin: below / at / above one
// lane, just below two lanes, and a many-lane size with a 40-bit remainder.
const std::size_t kRaggedK[] = {1, 63, 64, 65, 127, 1000};

Tensor random_pm1(Shape shape, std::mt19937_64& engine) {
  Tensor t(std::move(shape));
  std::bernoulli_distribution coin(0.5);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = coin(engine) ? 1.0f : -1.0f;
  }
  return t;
}

Tensor random_ternary(Shape shape, std::mt19937_64& engine, double zero_p) {
  Tensor t(std::move(shape));
  std::bernoulli_distribution zero(zero_p);
  std::bernoulli_distribution coin(0.5);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = zero(engine) ? 0.0f : (coin(engine) ? 1.0f : -1.0f);
  }
  return t;
}

void expect_bitwise_eq(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]), std::bit_cast<std::uint32_t>(b[i]))
        << "element " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// The float-materialized reference: matmul against the unpacked ±1/0
/// operand, then the XNOR-Net epilogue — the exact expressions of the
/// pre-packing forward path.
Tensor float_oracle(const Tensor& x, const BitMatrix& w_cols, const Tensor* alpha,
                    const Tensor* bias) {
  const Tensor w_rows = w_cols.unpack();  // (n x K)
  Tensor wt({w_cols.cols(), w_cols.rows()});
  for (std::size_t j = 0; j < w_cols.rows(); ++j) {
    for (std::size_t k = 0; k < w_cols.cols(); ++k) {
      wt.at(k, j) = w_rows.at(j, k);
    }
  }
  Tensor out = matmul(x, wt);
  if (alpha != nullptr) {
    for (std::size_t i = 0; i < out.dim(0); ++i) {
      for (std::size_t j = 0; j < out.dim(1); ++j) {
        out.at(i, j) = out.at(i, j) * (*alpha)[j] + (*bias)[j];
      }
    }
  }
  return out;
}

// ------------------------------------------------------------ BitMatrix ----

TEST(BitMatrix, SignPackRoundTripRaggedK) {
  std::mt19937_64 engine(7);
  for (std::size_t k : kRaggedK) {
    const Tensor t = random_pm1({3, k}, engine);
    const BitMatrix packed = BitMatrix::pack_rows_sign(t);
    EXPECT_EQ(packed.rows(), 3u);
    EXPECT_EQ(packed.cols(), k);
    EXPECT_EQ(packed.lanes(), (k + 63) / 64);
    EXPECT_TRUE(packed.dense());
    expect_bitwise_eq(packed.unpack(), t);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(packed.row_nvalid()[i], k);
    }
  }
}

TEST(BitMatrix, PadLaneBitsStayZero) {
  // All-ones 65-wide rows: lane 1 uses a single column, so 63 pad bits of
  // both planes must be zero or popcounts would leak into the dot.
  const Tensor t({2, 65}, 1.0f);
  const BitMatrix packed = BitMatrix::pack_rows_sign(t);
  ASSERT_EQ(packed.lanes(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(packed.value_bits()[i * 2 + 1], 1ull);
    EXPECT_EQ(packed.mask_bits()[i * 2 + 1], 1ull);
    EXPECT_EQ(packed.row_nvalid()[i], 65u);
  }
}

TEST(BitMatrix, TryPackRoundTripsTernary) {
  std::mt19937_64 engine(11);
  for (std::size_t k : kRaggedK) {
    const Tensor t = random_ternary({4, k}, engine, 0.3);
    const auto packed = BitMatrix::try_pack_rows(t);
    ASSERT_TRUE(packed.has_value());
    expect_bitwise_eq(packed->unpack(), t);
  }
}

TEST(BitMatrix, TryPackRejectsRealValues) {
  Tensor t({2, 4}, 1.0f);
  t[5] = 0.5f;
  EXPECT_FALSE(BitMatrix::try_pack_rows(t).has_value());
  t[5] = -1.0f;
  EXPECT_TRUE(BitMatrix::try_pack_rows(t).has_value());
  t[5] = 2.0f;
  EXPECT_FALSE(BitMatrix::try_pack_rows(t).has_value());
}

TEST(BitMatrix, TryPackMasksNegativeZero) {
  // SpinDrop produces -0.0f when it drops a -1 activation; it must pack
  // as a masked (zero) position, not as a -1.
  Tensor t({1, 3}, std::vector<float>{1.0f, -0.0f, -1.0f});
  const auto packed = BitMatrix::try_pack_rows(t);
  ASSERT_TRUE(packed.has_value());
  EXPECT_FALSE(packed->dense());
  EXPECT_EQ(packed->row_nvalid()[0], 2u);
  const Tensor back = packed->unpack();
  EXPECT_EQ(std::bit_cast<std::uint32_t>(back[1]), std::bit_cast<std::uint32_t>(0.0f));
}

// ----------------------------------------------------------------- bgemm ----

TEST(Bgemm, MatchesFloatOracleDenseRaggedK) {
  std::mt19937_64 engine(13);
  for (std::size_t k : kRaggedK) {
    const Tensor x = random_pm1({5, k}, engine);
    const Tensor w = random_pm1({7, k}, engine);
    const BitMatrix bx = BitMatrix::pack_rows_sign(x);
    const BitMatrix bw = BitMatrix::pack_rows_sign(w);
    expect_bitwise_eq(bgemm(bx, bw, nullptr, nullptr),
                      float_oracle(x, bw, nullptr, nullptr));
  }
}

TEST(Bgemm, MatchesFloatOracleMaskedWithEpilogue) {
  std::mt19937_64 engine(17);
  std::normal_distribution<float> gauss(0.0f, 1.0f);
  for (std::size_t k : kRaggedK) {
    const Tensor x = random_ternary({5, k}, engine, 0.25);
    const Tensor w = random_pm1({6, k}, engine);
    Tensor alpha({6});
    Tensor bias({6});
    for (std::size_t j = 0; j < 6; ++j) {
      alpha[j] = std::abs(gauss(engine)) + 0.01f;
      bias[j] = gauss(engine);
    }
    const auto bx = BitMatrix::try_pack_rows(x);
    ASSERT_TRUE(bx.has_value());
    const BitMatrix bw = BitMatrix::pack_rows_sign(w);
    expect_bitwise_eq(bgemm(*bx, bw, &alpha, &bias),
                      float_oracle(x, bw, &alpha, &bias));
  }
}

TEST(Bgemm, ValidatesOperands) {
  std::mt19937_64 engine(19);
  const BitMatrix x = BitMatrix::pack_rows_sign(random_pm1({2, 8}, engine));
  const BitMatrix w_wrong_k = BitMatrix::pack_rows_sign(random_pm1({3, 9}, engine));
  EXPECT_THROW((void)bgemm(x, w_wrong_k, nullptr, nullptr), std::invalid_argument);

  Tensor sparse({3, 8}, 1.0f);
  sparse[2] = 0.0f;
  const auto w_sparse = BitMatrix::try_pack_rows(sparse);
  ASSERT_TRUE(w_sparse.has_value());
  EXPECT_THROW((void)bgemm(x, *w_sparse, nullptr, nullptr), std::invalid_argument);

  const BitMatrix w = BitMatrix::pack_rows_sign(random_pm1({3, 8}, engine));
  const Tensor alpha({3}, 1.0f);
  EXPECT_THROW((void)bgemm(x, w, &alpha, nullptr), std::invalid_argument);
  const Tensor bad_bias({2}, 0.0f);
  EXPECT_THROW((void)bgemm(x, w, &alpha, &bad_bias), std::invalid_argument);
}

TEST(Bgemm, IncrementsObsCounter) {
  std::mt19937_64 engine(23);
  const BitMatrix x = BitMatrix::pack_rows_sign(random_pm1({2, 16}, engine));
  const BitMatrix w = BitMatrix::pack_rows_sign(random_pm1({4, 16}, engine));
  obs::Counter& calls = obs::Registry::global().counter("nn.bgemm.calls");
  const std::uint64_t before = calls.value();
  (void)bgemm(x, w, nullptr, nullptr);
  EXPECT_EQ(calls.value(), before + 1);
}

// --------------------------------------------------------- SIMD dispatch ----

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
  EXPECT_TRUE(simd::tier_available(simd::Tier::kScalar));
  EXPECT_TRUE(simd::tier_available(simd::active_tier()));
  EXPECT_STREQ(simd::kernels().name, simd::tier_name(simd::active_tier()));
}

TEST(SimdDispatch, TierGaugeExported) {
  (void)simd::kernels();
  EXPECT_EQ(obs::Registry::global().gauge("nn.simd.tier").value(),
            static_cast<double>(static_cast<int>(simd::active_tier())));
}

TEST(SimdDispatch, ForceUnavailableTierThrows) {
  bool some_unavailable = false;
  for (simd::Tier tier : {simd::Tier::kAvx2, simd::Tier::kNeon}) {
    if (!simd::tier_available(tier)) {
      some_unavailable = true;
      EXPECT_THROW(simd::force_tier(tier), std::invalid_argument);
    }
  }
  // At most one vector tier exists per arch, so at least one must throw.
  EXPECT_TRUE(some_unavailable);
}

std::vector<simd::Tier> available_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kNeon}) {
    if (simd::tier_available(tier)) {
      tiers.push_back(tier);
    }
  }
  return tiers;
}

TEST(SimdDispatch, FloatKernelsBitwiseEqualAcrossTiers) {
  std::mt19937_64 engine(29);
  // Ragged shapes exercise the blocked kernel's remainder panels and the
  // 8-lane dot kernel's tail.
  const Tensor a = Tensor::randn({17, 37}, 1.0f, engine);
  const Tensor b = Tensor::randn({37, 21}, 1.0f, engine);
  const Tensor bt = Tensor::randn({21, 37}, 1.0f, engine);
  const Tensor at = Tensor::randn({37, 17}, 1.0f, engine);  // stored (k x m)

  Tensor c_ref, cnt_ref, cat_ref;
  {
    simd::ScopedTier tier(simd::Tier::kScalar);
    c_ref = matmul(a, b);
    cnt_ref = matmul_transposed(a, bt);
    cat_ref = matmul_a_transposed(at, b);
  }
  for (simd::Tier tier : available_tiers()) {
    simd::ScopedTier forced(tier);
    expect_bitwise_eq(matmul(a, b), c_ref);
    expect_bitwise_eq(matmul_transposed(a, bt), cnt_ref);
    expect_bitwise_eq(matmul_a_transposed(at, b), cat_ref);
  }
}

TEST(SimdDispatch, BgemmBitwiseEqualAcrossTiers) {
  std::mt19937_64 engine(31);
  for (std::size_t k : kRaggedK) {
    const Tensor x = random_ternary({4, k}, engine, 0.2);
    const Tensor w = random_pm1({5, k}, engine);
    const auto bx = BitMatrix::try_pack_rows(x);
    ASSERT_TRUE(bx.has_value());
    const BitMatrix bw = BitMatrix::pack_rows_sign(w);
    Tensor ref;
    {
      simd::ScopedTier tier(simd::Tier::kScalar);
      ref = bgemm(*bx, bw, nullptr, nullptr);
    }
    for (simd::Tier tier : available_tiers()) {
      simd::ScopedTier forced(tier);
      expect_bitwise_eq(bgemm(*bx, bw, nullptr, nullptr), ref);
    }
  }
}

// ---------------------------------------------------------- BinaryDense ----

TEST(BinaryDenseInference, AutoMatchesFloatOracleOnSignInputs) {
  std::mt19937_64 engine(37);
  BinaryDense layer(33, 9, engine);  // ragged K: lane remainder of 33
  const Tensor x = random_pm1({6, 33}, engine);

  obs::Counter& calls = obs::Registry::global().counter("nn.bgemm.calls");
  layer.set_binary_algo(BinaryAlgo::kFloat);
  const Tensor ref = layer.forward(x, /*training=*/false);

  const std::uint64_t before = calls.value();
  layer.set_binary_algo(BinaryAlgo::kAuto);
  expect_bitwise_eq(layer.forward(x, /*training=*/false), ref);
  EXPECT_GT(calls.value(), before);  // kAuto actually took the packed path

  layer.set_binary_algo(BinaryAlgo::kBitpacked);
  expect_bitwise_eq(layer.forward(x, /*training=*/false), ref);
}

TEST(BinaryDenseInference, AutoFallsBackOnRealInputs) {
  std::mt19937_64 engine(41);
  BinaryDense layer(16, 5, engine);
  const Tensor x = Tensor::randn({4, 16}, 1.0f, engine);

  obs::Counter& calls = obs::Registry::global().counter("nn.bgemm.calls");
  layer.set_binary_algo(BinaryAlgo::kFloat);
  const Tensor ref = layer.forward(x, /*training=*/false);

  const std::uint64_t before = calls.value();
  layer.set_binary_algo(BinaryAlgo::kAuto);
  expect_bitwise_eq(layer.forward(x, /*training=*/false), ref);
  EXPECT_EQ(calls.value(), before);  // no silent quantization
}

TEST(BinaryDenseInference, MatchesTrainingForwardBitwise) {
  // The inference path (cached sign/alpha, packed kernels) must produce
  // the bits the training-mode float forward produces.
  std::mt19937_64 engine(43);
  BinaryDense layer(24, 7, engine);
  const Tensor x = random_ternary({5, 24}, engine, 0.2);
  const Tensor train_out = layer.forward(x, /*training=*/true);
  expect_bitwise_eq(layer.forward(x, /*training=*/false), train_out);
}

TEST(BinaryDenseInference, RepacksOnWeightMutation) {
  std::mt19937_64 engine(47);
  BinaryDense layer(12, 6, engine);
  const Tensor x = random_pm1({3, 12}, engine);
  (void)layer.forward(x, /*training=*/false);  // fill the pack cache

  // Mutate through the mutable reference the optimizer uses.
  Tensor& w = layer.latent_weight();
  for (std::size_t i = 0; i < w.numel(); ++i) {
    w[i] = -w[i] + 0.125f;
  }
  const Tensor expected = [&] {
    Tensor out = matmul(x, sign_of(w));
    const Tensor alpha = column_abs_mean(w);
    for (std::size_t i = 0; i < out.dim(0); ++i) {
      for (std::size_t j = 0; j < out.dim(1); ++j) {
        out.at(i, j) = out.at(i, j) * alpha[j] + layer.bias()[j];
      }
    }
    return out;
  }();
  expect_bitwise_eq(layer.forward(x, /*training=*/false), expected);
}

TEST(BinaryDenseInference, CloneCarriesIndependentPack) {
  std::mt19937_64 engine(53);
  BinaryDense layer(10, 4, engine);
  const Tensor x = random_pm1({2, 10}, engine);
  const Tensor ref = layer.forward(x, /*training=*/false);

  auto cloned = layer.clone();
  auto* copy = dynamic_cast<BinaryDense*>(cloned.get());
  ASSERT_NE(copy, nullptr);
  expect_bitwise_eq(copy->forward(x, /*training=*/false), ref);

  // Mutating the original must not leak into the clone's pack.
  layer.latent_weight() *= -1.0f;
  (void)layer.forward(x, /*training=*/false);
  expect_bitwise_eq(copy->forward(x, /*training=*/false), ref);
}

TEST(BinaryDenseInference, BackwardRequiresTrainingForward) {
  std::mt19937_64 engine(59);
  BinaryDense layer(8, 3, engine);
  const Tensor x = random_pm1({2, 8}, engine);
  (void)layer.forward(x, /*training=*/false);
  EXPECT_THROW((void)layer.backward(Tensor({2, 3}, 1.0f)), std::logic_error);
  (void)layer.forward(x, /*training=*/true);
  EXPECT_NO_THROW((void)layer.backward(Tensor({2, 3}, 1.0f)));
}

TEST(BinaryDenseTraining, UnperturbedByInterleavedInference) {
  // Two identical training loops; one also runs inference forwards (which
  // exercise the packed path) between steps. Latent weights must match
  // bit for bit — inference shares no state with training.
  std::mt19937_64 e1(61), e2(61), ex(67);
  BinaryDense a(14, 6, e1);
  BinaryDense b(14, 6, e2);
  b.set_binary_algo(BinaryAlgo::kBitpacked);
  const Tensor x = random_pm1({4, 14}, ex);
  const Tensor g = Tensor::randn({4, 6}, 0.5f, ex);
  const Tensor probe = random_pm1({3, 14}, ex);

  for (int step = 0; step < 3; ++step) {
    (void)a.forward(x, /*training=*/true);
    (void)a.backward(g);
    (void)b.forward(x, /*training=*/true);
    (void)b.backward(g);
    (void)b.forward(probe, /*training=*/false);  // interleaved inference
    for (auto layer : {&a, &b}) {
      for (ParamRef p : layer->parameters()) {
        for (std::size_t i = 0; i < p.value->numel(); ++i) {
          (*p.value)[i] -= 0.1f * (*p.grad)[i];
          (*p.grad)[i] = 0.0f;
        }
      }
    }
  }
  expect_bitwise_eq(a.latent_weight(), b.latent_weight());
  expect_bitwise_eq(a.bias(), b.bias());
}

// --------------------------------------------------------- BinaryConv2d ----

TEST(BinaryConv2dInference, AlgosBitwiseEqualOnSignInputs) {
  std::mt19937_64 engine(71);
  BinaryConv2d layer(2, 3, 3, 1, engine);
  const Tensor x = random_pm1({2, 2, 5, 5}, engine);

  layer.set_algo(Conv2d::Algo::kDirect);
  const Tensor direct = layer.forward(x, /*training=*/false);

  layer.set_algo(Conv2d::Algo::kIm2col);
  layer.set_binary_algo(BinaryAlgo::kFloat);
  const Tensor lowered = layer.forward(x, /*training=*/false);
  expect_bitwise_eq(lowered, direct);

  obs::Counter& calls = obs::Registry::global().counter("nn.bgemm.calls");
  const std::uint64_t before = calls.value();
  layer.set_binary_algo(BinaryAlgo::kAuto);
  // Padding=1 puts zeros in the im2col patches: the masked bgemm path.
  expect_bitwise_eq(layer.forward(x, /*training=*/false), direct);
  EXPECT_GT(calls.value(), before);
}

TEST(BinaryConv2dInference, MatchesTrainingForwardBitwise) {
  std::mt19937_64 engine(73);
  BinaryConv2d layer(1, 4, 3, 1, engine);
  const Tensor x = random_pm1({3, 1, 6, 6}, engine);
  const Tensor train_out = layer.forward(x, /*training=*/true);
  expect_bitwise_eq(layer.forward(x, /*training=*/false), train_out);
}

TEST(BinaryConv2dInference, BackwardStillRequiresTrainingForward) {
  std::mt19937_64 engine(79);
  BinaryConv2d layer(1, 2, 3, 1, engine);
  const Tensor x = random_pm1({1, 1, 4, 4}, engine);
  (void)layer.forward(x, /*training=*/false);
  EXPECT_THROW((void)layer.backward(Tensor({1, 2, 4, 4}, 1.0f)), std::logic_error);
}

// ----------------------------------------------------------- patch cache ----

class PatchCacheTest : public ::testing::Test {
 protected:
  void TearDown() override { set_patch_cache_enabled(true); }
};

TEST_F(PatchCacheTest, DenseDedupsConsecutiveRowsBitwise) {
  std::mt19937_64 engine(83);
  BinaryDense layer(20, 8, engine);
  // B=2 requests stacked T=3 times each — the fused-MC layout.
  const Tensor unique = random_pm1({2, 20}, engine);
  Tensor stacked({6, 20});
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t t = 0; t < 3; ++t) {
      for (std::size_t j = 0; j < 20; ++j) {
        stacked.at(b * 3 + t, j) = unique.at(b, j);
      }
    }
  }

  set_patch_cache_enabled(false);
  const Tensor ref = layer.forward(stacked, /*training=*/false);

  obs::Counter& hits = obs::Registry::global().counter("nn.patch_cache.hits");
  set_patch_cache_enabled(true);
  const std::uint64_t before = hits.value();
  expect_bitwise_eq(layer.forward(stacked, /*training=*/false), ref);
  EXPECT_EQ(hits.value(), before + 4);  // 6 rows, 2 unique
}

TEST_F(PatchCacheTest, ConvDedupsConsecutiveImagesBitwise) {
  std::mt19937_64 engine(89);
  BinaryConv2d layer(1, 3, 3, 1, engine);
  const Tensor image = random_pm1({1, 1, 5, 5}, engine);
  Tensor stacked({4, 1, 5, 5});
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t i = 0; i < 25; ++i) {
      stacked[b * 25 + i] = image[i];
    }
  }

  set_patch_cache_enabled(false);
  const Tensor ref = layer.forward(stacked, /*training=*/false);

  obs::Counter& hits = obs::Registry::global().counter("nn.patch_cache.hits");
  set_patch_cache_enabled(true);
  const std::uint64_t before = hits.value();
  expect_bitwise_eq(layer.forward(stacked, /*training=*/false), ref);
  EXPECT_EQ(hits.value(), before + 3);  // 4 images, 1 unique
}

// ------------------------------------------------- end-to-end equivalence ----

core::BuiltModel fixed_mlp() {
  core::ModelConfig config;
  config.method = core::Method::kSpinDrop;
  config.seed = 2024;
  core::BuiltModel model = core::make_binary_mlp(config, 16, {32, 16}, 4);
  model.enable_mc(true);
  return model;
}

std::vector<core::Prediction> run_fused(core::BuiltModel model) {
  std::mt19937_64 engine(97);
  const Tensor inputs = Tensor::randn({3, 16}, 1.0f, engine);
  const std::vector<std::uint64_t> seeds = {101, 202, 303};
  return core::predict_fused_batch(model, inputs, seeds, /*mc_samples=*/5);
}

void expect_same_predictions(const std::vector<core::Prediction>& a,
                             const std::vector<core::Prediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bitwise_eq(a[i].mean_probs, b[i].mean_probs);
    ASSERT_EQ(a[i].entropy.size(), b[i].entropy.size());
    for (std::size_t j = 0; j < a[i].entropy.size(); ++j) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i].entropy[j]),
                std::bit_cast<std::uint32_t>(b[i].entropy[j]));
      ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i].mutual_info[j]),
                std::bit_cast<std::uint32_t>(b[i].mutual_info[j]));
    }
  }
}

TEST(ServeEquivalence, FixedSeedPredictionsInvariantToComputePath) {
  core::BuiltModel model = fixed_mlp();
  const auto ref = [&] {
    core::BuiltModel oracle = model.clone();
    oracle.set_binary_algo(BinaryAlgo::kFloat);
    set_patch_cache_enabled(false);
    auto out = run_fused(std::move(oracle));
    set_patch_cache_enabled(true);
    return out;
  }();
  // Default path: kAuto + patch cache + dispatched kernels.
  expect_same_predictions(run_fused(model.clone()), ref);
  // Scalar tier.
  {
    simd::ScopedTier tier(simd::Tier::kScalar);
    expect_same_predictions(run_fused(model.clone()), ref);
  }
  // The fused stack dedups: T=5 passes of 3 requests hit the first layer.
  obs::Counter& hits = obs::Registry::global().counter("nn.patch_cache.hits");
  const std::uint64_t before = hits.value();
  (void)run_fused(model.clone());
  EXPECT_GE(hits.value() - before, 12u);  // >= (5-1)*3 on the first layer
}

}  // namespace
}  // namespace neuspin::nn
