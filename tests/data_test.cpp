// Unit tests for the procedural dataset generators.
#include <gtest/gtest.h>

#include "data/clusters.h"
#include "data/corruption.h"
#include "data/ood.h"
#include "data/strokes.h"
#include "data/timeseries.h"

namespace neuspin::data {
namespace {

TEST(Strokes, ShapeAndBalance) {
  StrokeConfig config;
  config.samples_per_class = 10;
  const nn::Dataset data = make_stroke_digits(config, 1);
  EXPECT_EQ(data.size(), 100u);
  EXPECT_EQ(data.inputs.shape(),
            (nn::Shape{100, 1, kStrokeImageSize, kStrokeImageSize}));
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t label : data.labels) {
    ASSERT_LT(label, 10u);
    ++counts[label];
  }
  for (std::size_t c : counts) {
    EXPECT_EQ(c, 10u) << "class-interleaved generation must be balanced";
  }
}

TEST(Strokes, PixelsInUnitRange) {
  StrokeConfig config;
  config.samples_per_class = 5;
  const nn::Dataset data = make_stroke_digits(config, 2);
  for (std::size_t i = 0; i < data.inputs.numel(); ++i) {
    EXPECT_GE(data.inputs[i], 0.0f);
    EXPECT_LE(data.inputs[i], 1.0f);
  }
}

TEST(Strokes, DeterministicPerSeed) {
  StrokeConfig config;
  config.samples_per_class = 3;
  const nn::Dataset a = make_stroke_digits(config, 7);
  const nn::Dataset b = make_stroke_digits(config, 7);
  for (std::size_t i = 0; i < a.inputs.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.inputs[i], b.inputs[i]);
  }
  const nn::Dataset c = make_stroke_digits(config, 8);
  bool different = false;
  for (std::size_t i = 0; i < a.inputs.numel() && !different; ++i) {
    different = a.inputs[i] != c.inputs[i];
  }
  EXPECT_TRUE(different);
}

TEST(Strokes, ClassesAreVisuallyDistinct) {
  // Mean images of different digits must differ substantially more than
  // two renderings of the same digit.
  StrokeConfig config;
  config.samples_per_class = 20;
  const nn::Dataset data = make_stroke_digits(config, 3);
  const std::size_t pixels = kStrokeImageSize * kStrokeImageSize;
  std::vector<std::vector<float>> means(10, std::vector<float>(pixels, 0.0f));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t p = 0; p < pixels; ++p) {
      means[data.labels[i]][p] += data.inputs[i * pixels + p] / 20.0f;
    }
  }
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      float dist = 0.0f;
      for (std::size_t p = 0; p < pixels; ++p) {
        const float d = means[a][p] - means[b][p];
        dist += d * d;
      }
      EXPECT_GT(dist, 1.0f) << "digits " << a << " and " << b << " overlap too much";
    }
  }
}

TEST(Strokes, FlattenPreservesData) {
  StrokeConfig config;
  config.samples_per_class = 2;
  const nn::Dataset images = make_stroke_digits(config, 4);
  const nn::Dataset flat = flatten_dataset(images);
  EXPECT_EQ(flat.inputs.shape(), (nn::Shape{20, 256}));
  EXPECT_FLOAT_EQ(flat.inputs[300], images.inputs[300]);
}

TEST(Clusters, SeparableWhenSpreadLarge) {
  ClusterConfig config;
  config.classes = 3;
  config.dimensions = 4;
  config.samples_per_class = 50;
  config.center_spread = 10.0f;
  config.cluster_sigma = 0.5f;
  const nn::Dataset data = make_gaussian_clusters(config, 5);
  EXPECT_EQ(data.size(), 150u);
  // Nearest-centroid classification should be nearly perfect.
  std::vector<std::vector<float>> centroids(3, std::vector<float>(4, 0.0f));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      centroids[data.labels[i]][d] += data.inputs.at(i, d) / 50.0f;
    }
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::size_t best = 0;
    float best_dist = 1e9f;
    for (std::size_t c = 0; c < 3; ++c) {
      float dist = 0.0f;
      for (std::size_t d = 0; d < 4; ++d) {
        const float delta = data.inputs.at(i, d) - centroids[c][d];
        dist += delta * delta;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (best == data.labels[i]) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<float>(correct) / 150.0f, 0.98f);
}

TEST(Clusters, SupportsManyClasses) {
  ClusterConfig config;
  config.classes = 100;
  config.dimensions = 16;
  config.samples_per_class = 3;
  const nn::Dataset data = make_gaussian_clusters(config, 6);
  EXPECT_EQ(data.size(), 300u);
  std::size_t max_label = 0;
  for (std::size_t l : data.labels) {
    max_label = std::max(max_label, l);
  }
  EXPECT_EQ(max_label, 99u);
}

TEST(TwoMoons, ShapeAndLabels) {
  const nn::Dataset data = make_two_moons(100, 0.05f, 7);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.inputs.dim(1), 2u);
}

TEST(Timeseries, WindowingIsConsistent) {
  SeriesConfig config;
  config.length = 100;
  config.window = 10;
  const SeriesDataset data = make_series(config, 8);
  EXPECT_EQ(data.size(), 90u);
  EXPECT_EQ(data.inputs.shape(), (nn::Shape{90, 10, 1}));
  // The target of window i equals the first input of window i+1 shifted:
  // inputs[i+1][9] is series[i+10] == targets[i].
  EXPECT_FLOAT_EQ(data.targets[0], data.inputs[(1 * 10 + 9)]);
}

TEST(Timeseries, RmseOfIdenticalSeriesIsZero) {
  nn::Tensor a({4, 1}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(rmse(a, a), 0.0f);
  nn::Tensor b({4, 1}, std::vector<float>{2, 3, 4, 5});
  EXPECT_FLOAT_EQ(rmse(a, b), 1.0f);
}

TEST(Corruption, SeverityZeroIsIdentity) {
  StrokeConfig sc;
  sc.samples_per_class = 2;
  const nn::Dataset clean = make_stroke_digits(sc, 9);
  for (CorruptionKind kind : all_corruptions()) {
    const nn::Dataset out = corrupt(clean, kind, 0.0f, 1);
    for (std::size_t i = 0; i < clean.inputs.numel(); ++i) {
      ASSERT_FLOAT_EQ(out.inputs[i], clean.inputs[i])
          << corruption_name(kind) << " at severity 0 must be the identity";
    }
  }
}

TEST(Corruption, DistortionGrowsWithSeverity) {
  StrokeConfig sc;
  sc.samples_per_class = 3;
  const nn::Dataset clean = make_stroke_digits(sc, 10);
  for (CorruptionKind kind : all_corruptions()) {
    float prev = 0.0f;
    for (float severity : {0.3f, 0.6f, 1.0f}) {
      const nn::Dataset out = corrupt(clean, kind, severity, 2);
      float dist = 0.0f;
      for (std::size_t i = 0; i < clean.inputs.numel(); ++i) {
        const float d = out.inputs[i] - clean.inputs[i];
        dist += d * d;
      }
      EXPECT_GE(dist, prev * 0.9f)
          << corruption_name(kind) << " distortion must not shrink with severity";
      prev = dist;
    }
    EXPECT_GT(prev, 0.0f);
  }
}

TEST(Corruption, PreservesLabelsAndRange) {
  StrokeConfig sc;
  sc.samples_per_class = 2;
  const nn::Dataset clean = make_stroke_digits(sc, 11);
  for (CorruptionKind kind : {CorruptionKind::kGaussianNoise, CorruptionKind::kSaltPepper}) {
    const nn::Dataset out = corrupt(clean, kind, 0.8f, 3);
    EXPECT_EQ(out.labels, clean.labels);
    for (std::size_t i = 0; i < out.inputs.numel(); ++i) {
      ASSERT_GE(out.inputs[i], 0.0f);
      ASSERT_LE(out.inputs[i], 1.0f);
    }
  }
}

TEST(Corruption, RejectsInvalidSeverity) {
  StrokeConfig sc;
  sc.samples_per_class = 1;
  const nn::Dataset clean = make_stroke_digits(sc, 12);
  EXPECT_THROW((void)corrupt(clean, CorruptionKind::kBlur, 1.5f, 1),
               std::invalid_argument);
}

TEST(Ood, SuitesProduceRequestedCounts) {
  StrokeConfig sc;
  sc.samples_per_class = 5;
  const nn::Dataset ref = make_stroke_digits(sc, 13);
  for (OodKind kind : all_ood_kinds()) {
    const nn::Dataset ood = make_ood(ref, kind, 20, 14);
    EXPECT_EQ(ood.size(), 20u) << ood_name(kind);
    EXPECT_EQ(ood.inputs.dim(2), kStrokeImageSize);
  }
}

TEST(Ood, UniformNoiseHasHighPixelEntropy) {
  StrokeConfig sc;
  sc.samples_per_class = 5;
  const nn::Dataset ref = make_stroke_digits(sc, 15);
  const nn::Dataset noise = make_ood(ref, OodKind::kUniformNoise, 30, 16);
  EXPECT_NEAR(noise.inputs.mean(), 0.5f, 0.03f);
  // Stroke digits are mostly dark: their mean is far from 0.5.
  EXPECT_LT(ref.inputs.mean(), 0.35f);
}

TEST(Ood, PatternsDifferFromDigits) {
  StrokeConfig sc;
  sc.samples_per_class = 5;
  const nn::Dataset ref = make_stroke_digits(sc, 17);
  const nn::Dataset patterns = make_ood(ref, OodKind::kDisjointPatterns, 30, 18);
  // Patterns fill much more of the canvas than sparse digit strokes.
  EXPECT_GT(patterns.inputs.mean(), ref.inputs.mean() + 0.1f);
}

TEST(Ood, RejectsBadCount) {
  StrokeConfig sc;
  sc.samples_per_class = 1;
  const nn::Dataset ref = make_stroke_digits(sc, 19);
  EXPECT_THROW((void)make_ood(ref, OodKind::kUniformNoise, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_ood(ref, OodKind::kUniformNoise, 1000, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace neuspin::data
