// Parallel Monte-Carlo evaluation: the threaded predictor must be bitwise
// identical to the serial one for a fixed seed and sample count — that is
// the contract that lets the pipeline scale across cores without changing
// a single reproduced paper number.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/models.h"
#include "core/pipeline.h"
#include "core/thread_pool.h"
#include "data/strokes.h"

namespace {

using namespace neuspin;

nn::Dataset tiny_dataset(std::uint64_t seed) {
  data::StrokeConfig sc;
  sc.samples_per_class = 5;  // 50 samples of 256 features
  return data::standardize_per_sample(data::make_stroke_digits_flat(sc, seed));
}

core::BuiltModel tiny_model(core::Method method, bool hw_noise = false,
                            double hw_variation = 0.0) {
  core::ModelConfig mc;
  mc.method = method;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  mc.hw_variation = hw_variation;
  if (hw_noise) {
    mc.hw.enabled = true;
    mc.hw.noise_fraction = 0.02f;
  }
  return core::make_binary_mlp(mc, 256, {32, 16}, 10);
}

core::EvalOptions options_with_threads(std::size_t threads) {
  core::EvalOptions opts;
  opts.mc_samples = 12;
  opts.batch_size = 16;  // several batches, including a ragged tail
  opts.threads = threads;
  opts.seed = 1234;
  return opts;
}

void expect_identical(const core::EvalResult& a, const core::EvalResult& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.nll, b.nll);
  EXPECT_EQ(a.ece, b.ece);
  EXPECT_EQ(a.brier, b.brier);
  EXPECT_EQ(a.mean_entropy, b.mean_entropy);
}

TEST(ThreadPool, RunsEveryTask) {
  core::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  core::ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  core::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 24);
}

TEST(ModelClone, MatchesOriginalPassForPass) {
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  model.enable_mc(true);
  core::BuiltModel copy = model.clone();
  const nn::Dataset data = tiny_dataset(3);
  const nn::Tensor x = data.batch(0, 8).first;

  for (std::uint64_t pass_seed : {1ull, 42ull, 0xdeadbeefull}) {
    model.reseed_stochastic(pass_seed);
    copy.reseed_stochastic(pass_seed);
    const nn::Tensor a = model.stochastic_logits(x);
    const nn::Tensor b = copy.stochastic_logits(x);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "pass_seed " << pass_seed << " element " << i;
    }
  }
}

TEST(ModelClone, IsIndependentOfTheOriginal) {
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  model.enable_mc(true);
  const nn::Dataset data = tiny_dataset(4);
  const nn::Tensor x = data.batch(0, 4).first;

  model.reseed_stochastic(11);
  const nn::Tensor before = model.stochastic_logits(x);

  // Burn randomness on the clone; the original's stream must not move.
  core::BuiltModel copy = model.clone();
  copy.reseed_stochastic(999);
  (void)copy.stochastic_logits(x);
  (void)copy.stochastic_logits(x);

  model.reseed_stochastic(11);
  const nn::Tensor after = model.stochastic_logits(x);
  for (std::size_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(before[i], after[i]);
  }
}

TEST(McPredictor, ThreadedMatchesSerialBitwise) {
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  model.enable_mc(true);
  const nn::Dataset data = tiny_dataset(5);
  const nn::Tensor x = data.batch(0, 16).first;

  const core::McPredictor predictor(9, /*base_seed=*/77);
  const core::McPredictor::SeededForward serial_forward =
      [&model](const nn::Tensor& in, std::uint64_t pass_seed) {
        model.reseed_stochastic(pass_seed);
        return model.stochastic_logits(in);
      };
  const core::Prediction serial = predictor.predict(x, serial_forward);

  std::vector<core::BuiltModel> replicas;
  for (int w = 0; w < 3; ++w) {
    replicas.push_back(model.clone());
  }
  std::vector<core::McPredictor::SeededForward> forwards;
  for (auto& replica : replicas) {
    forwards.push_back([&replica](const nn::Tensor& in, std::uint64_t pass_seed) {
      replica.reseed_stochastic(pass_seed);
      return replica.stochastic_logits(in);
    });
  }
  core::ThreadPool pool(3);
  const core::Prediction threaded = predictor.predict(x, forwards, pool);

  ASSERT_EQ(serial.mean_probs.numel(), threaded.mean_probs.numel());
  for (std::size_t i = 0; i < serial.mean_probs.numel(); ++i) {
    ASSERT_EQ(serial.mean_probs[i], threaded.mean_probs[i]);
  }
  ASSERT_EQ(serial.entropy.size(), threaded.entropy.size());
  for (std::size_t i = 0; i < serial.entropy.size(); ++i) {
    ASSERT_EQ(serial.entropy[i], threaded.entropy[i]);
  }
  for (std::size_t i = 0; i < serial.mutual_info.size(); ++i) {
    ASSERT_EQ(serial.mutual_info[i], threaded.mutual_info[i]);
  }
}

// Every stochastic method must survive the serial == threaded contract:
// this is what proves each layer's reseed() covers all of its randomness.
TEST(Evaluate, ThreadedMatchesSerialForEveryMethod) {
  const nn::Dataset test = tiny_dataset(6);
  const std::vector<core::Method> methods = {
      core::Method::kSpinDrop,     core::Method::kSpatialSpinDrop,
      core::Method::kSpinScaleDrop, core::Method::kAffineDropout,
      core::Method::kSubsetVi,
  };
  for (core::Method method : methods) {
    core::BuiltModel model = tiny_model(method);
    const core::EvalResult serial =
        core::evaluate(model, test, options_with_threads(1));
    const core::EvalResult threaded =
        core::evaluate(model, test, options_with_threads(4));
    SCOPED_TRACE(core::method_name(method));
    expect_identical(serial, threaded);
  }
}

TEST(Evaluate, ThreadedMatchesSerialWithHardwareNoiseAndVariation) {
  const nn::Dataset test = tiny_dataset(7);
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop, /*hw_noise=*/true,
                                      /*hw_variation=*/0.3);
  const core::EvalResult serial = core::evaluate(model, test, options_with_threads(1));
  const core::EvalResult threaded = core::evaluate(model, test, options_with_threads(3));
  expect_identical(serial, threaded);
}

TEST(Evaluate, ThreadedMatchesSerialForConvertedSpinBayes) {
  const nn::Dataset test = tiny_dataset(8);
  core::BuiltModel model = tiny_model(core::Method::kSpinBayes);
  core::SpinBayesConfig sb;
  sb.instances = 4;
  core::convert_to_spinbayes(model, sb);
  const core::EvalResult serial = core::evaluate(model, test, options_with_threads(1));
  const core::EvalResult threaded = core::evaluate(model, test, options_with_threads(4));
  expect_identical(serial, threaded);
}

// evaluate() must not touch the caller's model: its RNG streams (including
// the training-path engines) would otherwise depend on the thread count,
// making interleaved fit/evaluate programs machine-dependent.
TEST(Evaluate, DoesNotPerturbTheCallersModel) {
  const nn::Dataset test = tiny_dataset(13);
  core::BuiltModel untouched = tiny_model(core::Method::kSpinDrop);
  core::BuiltModel evaluated = tiny_model(core::Method::kSpinDrop);
  (void)core::evaluate(evaluated, test, options_with_threads(1));
  (void)core::evaluate(evaluated, test, options_with_threads(4));

  // Both models must now emit the same *unreseeded* stochastic sequence,
  // i.e. evaluation consumed none of the evaluated model's randomness.
  untouched.enable_mc(true);
  evaluated.enable_mc(true);
  const nn::Tensor x = test.batch(0, 4).first;
  for (int pass = 0; pass < 3; ++pass) {
    const nn::Tensor a = untouched.stochastic_logits(x);
    const nn::Tensor b = evaluated.stochastic_logits(x);
    for (std::size_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "pass " << pass << " element " << i;
    }
  }
}

// Small T, many batches: the pool fans whole batches out (one replica per
// batch chunk) instead of MC passes. Results must not move.
TEST(Evaluate, BatchFanoutMatchesSerialWhenMcSamplesAreFew) {
  const nn::Dataset test = tiny_dataset(14);  // 50 samples
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  core::EvalOptions serial_opts = options_with_threads(1);
  serial_opts.mc_samples = 2;
  serial_opts.batch_size = 8;  // 7 batches incl. ragged tail
  core::EvalOptions pooled_opts = options_with_threads(6);
  pooled_opts.mc_samples = 2;
  pooled_opts.batch_size = 8;
  const core::EvalResult serial = core::evaluate(model, test, serial_opts);
  const core::EvalResult pooled = core::evaluate(model, test, pooled_opts);
  expect_identical(serial, pooled);

  // Per-sample scores take the same fan-out path.
  const auto serial_scores = core::entropy_scores(model, test, serial_opts);
  const auto pooled_scores = core::entropy_scores(model, test, pooled_opts);
  ASSERT_EQ(serial_scores.size(), pooled_scores.size());
  for (std::size_t i = 0; i < serial_scores.size(); ++i) {
    ASSERT_EQ(serial_scores[i], pooled_scores[i]) << "sample " << i;
  }
}

TEST(Evaluate, RejectsZeroMcSamples) {
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  const nn::Dataset test = tiny_dataset(15);
  core::EvalOptions opts = options_with_threads(2);
  opts.mc_samples = 0;
  EXPECT_THROW((void)core::evaluate(model, test, opts), std::invalid_argument);
}

TEST(Evaluate, EntropyScoresOnEmptyDatasetYieldNoScores) {
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  const nn::Dataset empty;
  EXPECT_TRUE(core::entropy_scores(model, empty, options_with_threads(2)).empty());
}

TEST(Evaluate, RepeatedRunsAreDeterministic) {
  const nn::Dataset test = tiny_dataset(9);
  core::BuiltModel model = tiny_model(core::Method::kSpinScaleDrop);
  const core::EvalResult first = core::evaluate(model, test, options_with_threads(0));
  const core::EvalResult second = core::evaluate(model, test, options_with_threads(0));
  expect_identical(first, second);
}

TEST(Evaluate, OodPathIsThreadCountInvariant) {
  const nn::Dataset in_dist = tiny_dataset(10);
  const nn::Dataset ood = tiny_dataset(11);
  core::BuiltModel model = tiny_model(core::Method::kSpinDrop);
  const core::OodResult serial =
      core::evaluate_ood(model, in_dist, ood, options_with_threads(1));
  const core::OodResult threaded =
      core::evaluate_ood(model, in_dist, ood, options_with_threads(4));
  EXPECT_EQ(serial.auroc, threaded.auroc);
  EXPECT_EQ(serial.detection_rate, threaded.detection_rate);
}

TEST(Evaluate, CorruptionSweepCoversEveryPoint) {
  data::StrokeConfig sc;
  sc.samples_per_class = 3;
  const nn::Dataset images = data::make_stroke_digits(sc, 12);  // NCHW
  core::ModelConfig mc;
  mc.method = core::Method::kSpatialSpinDrop;
  mc.seed = 7;
  core::BuiltModel model = core::make_binary_cnn(mc);

  const std::vector<data::CorruptionKind> kinds = {
      data::CorruptionKind::kGaussianNoise, data::CorruptionKind::kBlur};
  const std::vector<float> severities = {0.3f, 0.9f};
  core::EvalOptions serial_opts = options_with_threads(1);
  serial_opts.mc_samples = 6;
  core::EvalOptions threaded_opts = options_with_threads(4);
  threaded_opts.mc_samples = 6;
  const auto serial =
      core::evaluate_corruption(model, images, kinds, severities, 5, serial_opts);
  const auto threaded =
      core::evaluate_corruption(model, images, kinds, severities, 5, threaded_opts);
  ASSERT_EQ(serial.size(), kinds.size() * severities.size());
  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].kind, threaded[i].kind);
    EXPECT_EQ(serial[i].severity, threaded[i].severity);
    expect_identical(serial[i].result, threaded[i].result);
  }
}

}  // namespace
