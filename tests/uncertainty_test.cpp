// Unit tests for uncertainty metrics and the MC predictive loop.
#include <cmath>

#include <gtest/gtest.h>

#include "core/bayesian.h"
#include "core/uncertainty.h"

namespace neuspin::core {
namespace {

TEST(Entropy, UniformIsMaximal) {
  nn::Tensor probs({2, 4}, std::vector<float>{0.25f, 0.25f, 0.25f, 0.25f,  //
                                              1.0f, 0.0f, 0.0f, 0.0f});
  const auto h = predictive_entropy(probs);
  EXPECT_NEAR(h[0], std::log(4.0f), 1e-5f);
  EXPECT_NEAR(h[1], 0.0f, 1e-5f);
  EXPECT_GT(h[0], h[1]);
}

TEST(MutualInformation, ZeroWhenMembersAgree) {
  nn::Tensor p({1, 2}, std::vector<float>{0.7f, 0.3f});
  const auto mi = mutual_information({p, p, p});
  EXPECT_NEAR(mi[0], 0.0f, 1e-5f);
}

TEST(MutualInformation, PositiveWhenMembersDisagree) {
  nn::Tensor a({1, 2}, std::vector<float>{1.0f, 0.0f});
  nn::Tensor b({1, 2}, std::vector<float>{0.0f, 1.0f});
  const auto mi = mutual_information({a, b});
  EXPECT_NEAR(mi[0], std::log(2.0f), 1e-4f)
      << "total disagreement of confident members = ln(2) epistemic bits";
}

TEST(Nll, PerfectPredictionIsZero) {
  nn::Tensor probs({1, 3}, std::vector<float>{0.0f, 1.0f, 0.0f});
  EXPECT_NEAR(negative_log_likelihood(probs, {1}), 0.0f, 1e-5f);
}

TEST(Nll, WrongConfidentPredictionIsLarge) {
  nn::Tensor probs({1, 3}, std::vector<float>{0.99f, 0.005f, 0.005f});
  EXPECT_GT(negative_log_likelihood(probs, {1}), 5.0f);
}

TEST(Brier, KnownValues) {
  nn::Tensor probs({1, 2}, std::vector<float>{1.0f, 0.0f});
  EXPECT_NEAR(brier_score(probs, {0}), 0.0f, 1e-6f);
  EXPECT_NEAR(brier_score(probs, {1}), 2.0f, 1e-6f);
}

TEST(Ece, PerfectlyCalibratedBinaryClassifier) {
  // 10 samples at confidence 0.8, exactly 8 correct -> ECE ~ 0.
  nn::Tensor probs({10, 2});
  std::vector<std::size_t> labels(10);
  for (std::size_t i = 0; i < 10; ++i) {
    probs.at(i, 0) = 0.8f;
    probs.at(i, 1) = 0.2f;
    labels[i] = i < 8 ? 0 : 1;
  }
  EXPECT_NEAR(expected_calibration_error(probs, labels), 0.0f, 1e-5f);
}

TEST(Ece, OverconfidentClassifierPenalized) {
  nn::Tensor probs({10, 2});
  std::vector<std::size_t> labels(10);
  for (std::size_t i = 0; i < 10; ++i) {
    probs.at(i, 0) = 0.99f;
    probs.at(i, 1) = 0.01f;
    labels[i] = i < 5 ? 0 : 1;  // only 50% correct
  }
  EXPECT_NEAR(expected_calibration_error(probs, labels), 0.49f, 0.02f);
}

TEST(Accuracy, CountsArgmaxMatches) {
  nn::Tensor probs({2, 2}, std::vector<float>{0.9f, 0.1f, 0.2f, 0.8f});
  EXPECT_FLOAT_EQ(accuracy(probs, {0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(accuracy(probs, {1, 0}), 0.0f);
}

TEST(Auroc, PerfectSeparation) {
  const std::vector<float> scores = {0.1f, 0.2f, 0.3f, 0.8f, 0.9f};
  const std::vector<bool> is_ood = {false, false, false, true, true};
  EXPECT_NEAR(auroc(scores, is_ood), 1.0f, 1e-6f);
}

TEST(Auroc, RandomScoresGiveHalf) {
  std::vector<float> scores;
  std::vector<bool> is_ood;
  std::mt19937_64 engine(1);
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(u01(engine));
    is_ood.push_back(i % 2 == 0);
  }
  EXPECT_NEAR(auroc(scores, is_ood), 0.5f, 0.03f);
}

TEST(Auroc, HandlesTies) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<bool> is_ood = {false, true, false, true};
  EXPECT_NEAR(auroc(scores, is_ood), 0.5f, 1e-6f);
}

TEST(DetectionRate, ThresholdAtQuantile) {
  std::vector<float> id_scores;
  for (int i = 0; i < 100; ++i) {
    id_scores.push_back(static_cast<float>(i) / 100.0f);  // 0.00 .. 0.99
  }
  const std::vector<float> ood_scores = {0.5f, 0.97f, 0.99f, 1.5f};
  // 95th percentile threshold ~ 0.95: detects the last three.
  EXPECT_NEAR(detection_rate(id_scores, ood_scores, 0.95f), 0.75f, 1e-5f);
}

TEST(DetectionRate, RejectsDegenerateInputs) {
  EXPECT_THROW((void)detection_rate({}, {1.0f}), std::invalid_argument);
  EXPECT_THROW((void)detection_rate({1.0f}, {1.0f}, 1.5f), std::invalid_argument);
}

TEST(McPredictor, AveragesMemberProbabilities) {
  McPredictor predictor(64);
  std::mt19937_64 engine(5);
  // Stochastic "model": logits jitter around a fixed mean.
  auto forward = [&engine](const nn::Tensor& x) {
    std::normal_distribution<float> noise(0.0f, 0.5f);
    nn::Tensor logits({x.dim(0), 3});
    for (std::size_t i = 0; i < x.dim(0); ++i) {
      logits.at(i, 0) = 2.0f + noise(engine);
      logits.at(i, 1) = 0.0f + noise(engine);
      logits.at(i, 2) = -2.0f + noise(engine);
    }
    return logits;
  };
  nn::Tensor input({4, 1});
  const Prediction pred = predictor.predict(input, forward);
  EXPECT_EQ(pred.member_probs.size(), 64u);
  EXPECT_EQ(pred.mean_probs.shape(), (nn::Shape{4, 3}));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pred.predicted_class()[i], 0u);
    float sum = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) {
      sum += pred.mean_probs.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    EXPECT_GT(pred.mutual_info[i], 0.0f) << "stochastic members carry epistemic spread";
    EXPECT_GE(pred.entropy[i], pred.mutual_info[i])
        << "total uncertainty bounds the epistemic part";
  }
}

TEST(McPredictor, RejectsZeroSamples) {
  EXPECT_THROW(McPredictor(0), std::invalid_argument);
}

}  // namespace
}  // namespace neuspin::core
