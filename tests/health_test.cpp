// Self-healing substrate contracts (xbar/health.h + the spare-line remap
// machinery in xbar/crossbar.h):
//
//  * A pristine tile probes healthy, and the forced localization sweep
//    measures EXACTLY zero deviation — the golden canary replicates mac's
//    summation order, so tolerance only rejects real faults.
//  * The O(cells) conductance sweep carries the same information as
//    one-hot row MVM probes (the physical BIST it abstracts).
//  * Targeted defects are localized to the right lines; the greedy cover
//    is deterministic (rows beat columns on ties, lower index first).
//  * THE PIN: a tile healed by spare-line remapping serves bitwise the
//    answers of a fresh defect-free tile — under both evaluation modes,
//    across multiple row blocks, through the event engine's caches.
//  * Progressive drift degrades outputs; recalibration restores them
//    bitwise (conductances AND the ADC's drifted input offset).
//  * Spare exhaustion is reported, never silently ignored.
//  * TiledMlp/TiledBackend: per-tile defect targeting reproduces exactly
//    the whole-model injection's defects on that tile; clone() siblings
//    stay isolated under injection; check_health/heal restore clean bits
//    at the backend seam, for the dense MLP and the Table-I CNN alike.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "core/fidelity.h"
#include "core/hw_model.h"
#include "core/models.h"
#include "data/strokes.h"
#include "device/defects.h"
#include "nn/model.h"
#include "xbar/crossbar.h"
#include "xbar/health.h"
#include "xbar/mapping.h"
#include "xbar/tile.h"

namespace {

using namespace neuspin;

// ------------------------------------------------------------- helpers ----

xbar::TileConfig small_config(std::size_t spare_rows, std::size_t spare_cols,
                              xbar::EvalMode mode = xbar::EvalMode::kEventDriven) {
  xbar::TileConfig config;
  config.max_rows = 8;  // small blocks -> multi-block tiles in the tests
  config.eval_mode = mode;
  config.crossbar.spare_rows = spare_rows;
  config.crossbar.spare_cols = spare_cols;
  return config;
}

/// Deterministic +-1 weights and unit scales.
xbar::DenseTile make_tile(const xbar::TileConfig& config, std::size_t in,
                          std::size_t out, std::uint64_t seed = 42) {
  std::vector<float> weights(in * out);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = (i * 2654435761u >> 3) % 2 == 0 ? 1.0f : -1.0f;
  }
  const std::vector<float> scales(out, 1.0f);
  return xbar::DenseTile(config, in, out, weights, scales, seed);
}

/// One deterministic +-1 input per pass index.
std::vector<float> probe_input(std::size_t in, std::size_t pass) {
  std::vector<float> input(in);
  for (std::size_t i = 0; i < in; ++i) {
    input[i] = (i + pass) % 3 == 0 ? -1.0f : 1.0f;
  }
  return input;
}

std::vector<float> run(xbar::DenseTile& tile, std::size_t pass) {
  std::mt19937_64 engine(7);
  return tile.forward(probe_input(tile.in_features(), pass), nullptr, engine);
}

// ------------------------------------------------------ mapping census ----

TEST(MappingCensus, SpareProvisioningPricesStrategiesDifferently) {
  xbar::ConvGeometry geometry;  // 16 -> 32, 3x3
  // No spares: the census is the spare-less one.
  const xbar::MappingCensus bare =
      xbar::census(geometry, xbar::MappingStrategy::kUnfoldedColumns);
  EXPECT_EQ(bare.spare_cells, 0u);
  EXPECT_EQ(bare.spare_overhead, 0.0);

  geometry.spare_rows = 4;
  geometry.spare_cols = 4;
  const xbar::MappingCensus s1 =
      xbar::census(geometry, xbar::MappingStrategy::kUnfoldedColumns);
  const xbar::MappingCensus s2 =
      xbar::census(geometry, xbar::MappingStrategy::kKernelPosition);
  // Same logical cells either way; strategy 2 pays the redundancy tax in
  // each of its K*K small arrays, so its spare overhead is higher.
  EXPECT_EQ(s1.total_cells, s2.total_cells);
  EXPECT_GT(s1.spare_cells, 0u);
  EXPECT_GT(s2.spare_cells, s1.spare_cells);
  EXPECT_GT(s2.spare_overhead, s1.spare_overhead);
  // The formula: physical minus logical.
  EXPECT_EQ(s1.spare_cells,
            (s1.crossbar_rows + 4) * (s1.crossbar_cols + 4) - s1.total_cells);
}

// --------------------------------------------------------------- probe ----

TEST(Probe, PristineTileSweepsToExactlyZeroDeviation) {
  xbar::DenseTile tile = make_tile(small_config(2, 2), 20, 6);
  const xbar::ProbeReport canary = xbar::probe_tile(tile, {});
  EXPECT_TRUE(canary.healthy());
  EXPECT_TRUE(canary.canary_ok);
  EXPECT_FALSE(canary.swept) << "a passing canary skips the O(cells) sweep";

  xbar::ProbeConfig forced;
  forced.force_sweep = true;
  const xbar::ProbeReport swept = xbar::probe_tile(tile, forced);
  EXPECT_TRUE(swept.swept);
  EXPECT_EQ(swept.cells_faulty, 0u);
  EXPECT_EQ(swept.max_deviation, 0.0)
      << "golden references must match measured conductances bitwise on a "
         "pristine tile — the tolerance exists for faults, not float noise";
  EXPECT_EQ(swept.health_score(), 1.0);
  EXPECT_EQ(swept.cells_checked, 2 * tile.cell_count())
      << "both differential planes are swept";
}

TEST(Probe, SweepMatchesOneHotMacProbes) {
  xbar::DenseTile tile = make_tile(small_config(2, 2), 12, 5);
  tile.inject_cell_defect(0, true, 3, 2, device::DefectKind::kOpen);
  tile.inject_cell_defect(1, false, 1, 4, device::DefectKind::kStuckAtParallel);

  const double delta_g = tile.unit_current() / tile.config().crossbar.read_voltage;
  for (std::size_t b = 0; b < tile.block_count(); ++b) {
    for (const xbar::Crossbar* plane :
         {&tile.plus_plane(b), &tile.minus_plane(b)}) {
      const double attenuation = plane->ir_drop_factor(1);
      for (std::size_t r = 0; r < plane->rows(); ++r) {
        // The physical probe: drive ONE word line, read all columns.
        std::vector<xbar::Volt> one_hot(plane->rows(), 0.0);
        one_hot[r] = plane->config().read_voltage;
        const auto currents = plane->mac(one_hot);
        for (std::size_t c = 0; c < plane->cols(); ++c) {
          const double measured_g =
              currents[c] / (one_hot[r] * attenuation);
          const double dev_one_hot =
              std::abs(measured_g - plane->reference_conductance(r, c)) / delta_g;
          const double dev_sweep =
              std::abs(plane->conductance(r, c) -
                       plane->reference_conductance(r, c)) /
              delta_g;
          EXPECT_NEAR(dev_one_hot, dev_sweep, 1e-9)
              << "block " << b << " cell (" << r << "," << c
              << "): the O(cells) sweep must carry exactly the one-hot MVM "
                 "probe's information";
        }
      }
    }
  }
}

TEST(Probe, CanaryDetectsAndSweepLocalizesAnOpenCell) {
  xbar::DenseTile tile = make_tile(small_config(2, 2), 20, 6);
  // Four opens on row 3 of block 1 (distinct columns): one spare row fixes
  // all four, and the greedy cover must see that.
  for (std::size_t c = 0; c < 4; ++c) {
    tile.inject_cell_defect(1, true, 3, c, device::DefectKind::kOpen);
  }
  const xbar::ProbeReport report = xbar::probe_tile(tile, {});
  EXPECT_FALSE(report.canary_ok) << "an open cell shifts a column current far "
                                    "beyond the canary tolerance";
  EXPECT_TRUE(report.swept) << "a failed canary triggers localization";
  EXPECT_EQ(report.cells_faulty, 4u);
  ASSERT_EQ(report.faulty_rows.size(), 1u);
  EXPECT_EQ(report.faulty_rows[0].block, 1u);
  EXPECT_EQ(report.faulty_rows[0].index, 3u);
  EXPECT_EQ(report.faulty_rows[0].faulty_cells, 4u);
  EXPECT_TRUE(report.faulty_cols.empty())
      << "one row explains every stuck cell; no column quarantine";
  EXPECT_LT(report.health_score(), 1.0);
}

TEST(Probe, GreedyCoverIsDeterministicRowsBeatColumnsOnTies) {
  // A column of faults: 4 cells down column 2 of block 0 -> the column
  // count (4) beats every row count (1), so ONE column is quarantined.
  xbar::DenseTile columns = make_tile(small_config(2, 2), 8, 6);
  for (std::size_t r = 0; r < 4; ++r) {
    columns.inject_cell_defect(0, true, r, 2, device::DefectKind::kOpen);
  }
  const xbar::ProbeReport by_col = xbar::probe_tile(columns, {});
  EXPECT_TRUE(by_col.faulty_rows.empty());
  ASSERT_EQ(by_col.faulty_cols.size(), 1u);
  EXPECT_EQ(by_col.faulty_cols[0].index, 2u);

  // A single isolated cell ties its row against its column: the row wins.
  xbar::DenseTile single = make_tile(small_config(2, 2), 8, 6);
  single.inject_cell_defect(0, false, 5, 1, device::DefectKind::kOpen);
  const xbar::ProbeReport tie = xbar::probe_tile(single, {});
  ASSERT_EQ(tie.faulty_rows.size(), 1u);
  EXPECT_EQ(tie.faulty_rows[0].index, 5u);
  EXPECT_TRUE(tie.faulty_cols.empty());
}

// --------------------------------------------------------------- drift ----

TEST(Drift, DegradesProbesAndRecalibrationRestoresBitwise) {
  const xbar::TileConfig config = small_config(0, 0);
  xbar::DenseTile tile = make_tile(config, 20, 6);
  xbar::DenseTile fresh = make_tile(config, 20, 6);
  ASSERT_EQ(run(tile, 0), run(fresh, 0)) << "same seed, same bits";

  // Several compounding drift epochs: conductances decay, the ADC offset
  // random-walks.
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    tile.apply_drift(0.2, 100 + epoch);
  }
  xbar::ProbeConfig forced;
  forced.force_sweep = true;
  const xbar::ProbeReport drifted = xbar::probe_tile(tile, forced);
  EXPECT_FALSE(drifted.healthy());
  EXPECT_TRUE(drifted.drift_suspected)
      << "mean deviation of non-stuck cells flags drift";
  EXPECT_NE(run(tile, 1), run(fresh, 1)) << "uncompensated drift changes bits";

  const std::size_t moved = tile.recalibrate();
  EXPECT_GT(moved, 0u);
  const xbar::ProbeReport healed = xbar::probe_tile(tile, forced);
  EXPECT_TRUE(healed.healthy());
  EXPECT_EQ(healed.max_deviation, 0.0);
  EXPECT_EQ(tile.adc().offset(), 0.0) << "offset cal zeroes the read-out chain";
  for (std::size_t pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(run(tile, pass), run(fresh, pass))
        << "recalibration must restore the exact pre-drift bits (pass "
        << pass << ")";
  }
}

TEST(Drift, AdcOffsetIsDetectedByGroundedInputRead) {
  // The offset walk is seeded; find an epoch seed whose |step| puts the
  // offset past the quantizer's floor, then the probe MUST see it. The
  // search is deterministic, so the test is too.
  xbar::DenseTile tile = make_tile(small_config(0, 0), 12, 4);
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 16 && !detected; ++seed) {
    tile.apply_drift(2.0, seed);
    detected = xbar::probe_tile(tile, {}).adc_offset_detected;
  }
  EXPECT_TRUE(detected) << "a multi-LSB input-referred offset must fail the "
                           "grounded-input calibration read";
  tile.recalibrate();
  EXPECT_FALSE(xbar::probe_tile(tile, {}).adc_offset_detected);
}

// ---------------------------------------------------------------- heal ----

class HealModes : public ::testing::TestWithParam<xbar::EvalMode> {};

TEST_P(HealModes, RemappedTileServesBitwiseFreshTileAnswers) {
  const xbar::TileConfig config = small_config(2, 2, GetParam());
  xbar::DenseTile tile = make_tile(config, 20, 6);
  xbar::DenseTile fresh = make_tile(config, 20, 6);

  // Warm the event-engine caches BEFORE the damage: the heal must
  // invalidate them, not serve stale pre-defect currents.
  for (std::size_t pass = 0; pass < 3; ++pass) {
    ASSERT_EQ(run(tile, pass), run(fresh, pass));
  }

  // Damage two blocks: a row burst in block 0, a column burst in block 2.
  for (std::size_t c = 0; c < 3; ++c) {
    tile.inject_cell_defect(0, true, 2, c, device::DefectKind::kOpen);
  }
  for (std::size_t r = 0; r < 3; ++r) {
    tile.inject_cell_defect(2, false, r, 4, device::DefectKind::kOpen);
  }
  EXPECT_FALSE(xbar::probe_tile(tile, {}).healthy());

  const xbar::HealSummary summary = xbar::heal_tile(tile, {});
  EXPECT_EQ(summary.rows_remapped, 1u);
  EXPECT_EQ(summary.cols_remapped, 1u);
  EXPECT_EQ(summary.lines_unrepairable, 0u);
  EXPECT_TRUE(summary.healthy_after);
  EXPECT_TRUE(xbar::probe_tile(tile, {}).healthy());

  // THE PIN: the healed tile is indistinguishable from a fresh tile, bit
  // for bit, pass after pass — remap indirection, spare-cell conductances
  // and cache invalidation all included.
  for (std::size_t pass = 0; pass < 4; ++pass) {
    EXPECT_EQ(run(tile, pass), run(fresh, pass))
        << "healed tile must serve the fresh tile's exact bits (pass " << pass
        << ", mode " << static_cast<int>(GetParam()) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(BothEvalModes, HealModes,
                         ::testing::Values(xbar::EvalMode::kEventDriven,
                                           xbar::EvalMode::kFull));

TEST(Heal, SpareExhaustionIsReportedNotSilent) {
  xbar::DenseTile tile = make_tile(small_config(1, 0), 8, 6);
  // Two faulty rows, one spare row, zero spare columns: exactly one line
  // heals, the other is reported unrepairable.
  tile.inject_cell_defect(0, true, 1, 0, device::DefectKind::kOpen);
  tile.inject_cell_defect(0, true, 1, 1, device::DefectKind::kOpen);
  tile.inject_cell_defect(0, true, 3, 2, device::DefectKind::kOpen);
  tile.inject_cell_defect(0, true, 3, 3, device::DefectKind::kOpen);
  const xbar::HealSummary summary = xbar::heal_tile(tile, {});
  EXPECT_EQ(summary.rows_remapped, 1u);
  EXPECT_EQ(summary.lines_unrepairable, 1u);
  EXPECT_FALSE(summary.healthy_after)
      << "an exhausted tile must demand replacement, not claim health";
}

TEST(Heal, SenseAmpReadoutTilesHealToo) {
  // Hidden layers read through 1-bit sense amps — no ADC codes to compare,
  // but the probe reads plane currents directly (BIST test mode), so
  // detection and healing are readout-agnostic.
  xbar::TileConfig config = small_config(2, 2);
  config.readout = xbar::Readout::kSenseAmp;
  xbar::DenseTile tile = make_tile(config, 16, 6);
  xbar::DenseTile fresh = make_tile(config, 16, 6);
  tile.inject_cell_defect(0, true, 4, 1, device::DefectKind::kShort);
  EXPECT_FALSE(xbar::probe_tile(tile, {}).healthy())
      << "a short dominates the column current even behind a sign read-out";
  const xbar::HealSummary summary = xbar::heal_tile(tile, {});
  EXPECT_TRUE(summary.healthy_after);
  for (std::size_t pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(run(tile, pass), run(fresh, pass));
  }
}

// ------------------------------------------------- model-level healing ----

core::BuiltModel health_model() {
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  return core::make_binary_mlp(mc, 256, {32, 16}, 10);
}

nn::Tensor stroke_batch(std::size_t rows) {
  data::StrokeConfig sc;
  sc.samples_per_class = 2;
  const nn::Dataset data =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 31));
  return data.batch(0, rows).first;
}

/// Bitwise comparison of two backends' batched forwards.
void expect_same_bits(core::FidelityBackend& a, core::FidelityBackend& b,
                      const nn::Tensor& inputs, const char* when) {
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  const core::BackendBatch ba = a.forward(inputs, seeds, nullptr);
  const core::BackendBatch bb = b.forward(inputs, seeds, nullptr);
  ASSERT_EQ(ba.predictions.size(), bb.predictions.size()) << when;
  for (std::size_t r = 0; r < ba.predictions.size(); ++r) {
    const nn::Tensor& pa = ba.predictions[r].mean_probs;
    const nn::Tensor& pb = bb.predictions[r].mean_probs;
    ASSERT_EQ(pa.numel(), pb.numel()) << when;
    for (std::size_t c = 0; c < pa.numel(); ++c) {
      ASSERT_EQ(pa[c], pb[c]) << when << ": row " << r << " class " << c;
    }
  }
}

TEST(TiledBackend, PerTileTargetingReproducesWholeModelInjection) {
  core::BuiltModel model = health_model();
  core::TiledBackendConfig config;
  config.mc_samples = 2;
  core::TiledBackend whole(model.net, config);
  core::TiledBackend targeted(model.net, config);

  device::DefectRates rates;
  rates.stuck_at_p = 0.01;
  rates.stuck_at_ap = 0.01;
  rates.open = 0.005;
  constexpr std::uint64_t kSeed = 909;
  whole.inject_defects(rates, kSeed);
  // Targeting every tile in turn with the SAME seed must land exactly the
  // defects the whole-model injection drew — the per-tile seed derivation
  // is part of the determinism contract (FaultPlan::defect_tile relies on
  // it to measure detection latency against a known damage set).
  for (std::size_t t = 0; t < 3; ++t) {
    targeted.inject_defects_at(t, rates, kSeed);
  }
  expect_same_bits(whole, targeted, stroke_batch(3),
                   "per-tile targeting vs whole-model injection");
}

TEST(TiledBackend, CloneSiblingsStayIsolatedUnderInjectionAndDrift) {
  core::BuiltModel model = health_model();
  core::TiledBackendConfig config;
  config.mc_samples = 2;
  core::TiledBackend original(model.net, config);
  const std::unique_ptr<core::FidelityBackend> sibling = original.clone();
  core::TiledBackend pristine(model.net, config);
  const nn::Tensor inputs = stroke_batch(3);

  // Warm both replicas' event caches, then damage ONLY the original.
  expect_same_bits(original, *sibling, inputs, "clones before damage");
  device::DefectRates rates;
  rates.stuck_at_p = 0.05;
  rates.open = 0.02;
  original.inject_defects(rates, 404);
  original.apply_drift(0.1, 405);
  // The sibling must keep serving pristine bits: no shared defect maps, no
  // shared drift state, no RNG or delta-cache coupling through the clone.
  expect_same_bits(*sibling, pristine, inputs, "sibling after damage");
  expect_same_bits(*sibling, pristine, inputs, "sibling steady state");
}

TEST(TiledBackend, CheckHealthLocalizesAndHealRestoresCleanBits) {
  core::BuiltModel model = health_model();
  core::TiledBackendConfig config;
  config.mc_samples = 2;
  config.tile.crossbar.spare_rows = 4;
  config.tile.crossbar.spare_cols = 4;
  core::TiledBackend clean(model.net, config);
  ASSERT_TRUE(clean.check_health({}).healthy());

  // A small targeted burst on the classifier tile. The burst seed is found
  // by deterministic search: at least one defect lands AND the provisioned
  // spares cover it — then the heal must hand back the clean bits.
  device::DefectRates rates;
  rates.stuck_at_p = 0.01;
  rates.stuck_at_ap = 0.01;
  rates.open = 0.005;
  const nn::Tensor inputs = stroke_batch(3);
  bool healed = false;
  for (std::uint64_t seed = 1; seed <= 32 && !healed; ++seed) {
    const std::unique_ptr<core::FidelityBackend> patient = clean.clone();
    patient->inject_defects_at(2, rates, seed);
    const xbar::HealthReport sick = patient->check_health({});
    if (sick.healthy()) {
      continue;  // this seed drew zero effective defects; next
    }
    EXPECT_EQ(sick.tiles, 3u);
    EXPECT_GE(sick.tiles_faulty, 1u);
    EXPECT_LT(sick.score(), 1.0);
    const xbar::HealSummary summary = patient->heal({});
    if (!summary.healthy_after) {
      continue;  // damage exceeded the spare budget; next seed
    }
    EXPECT_GE(summary.rows_remapped + summary.cols_remapped, 1u);
    EXPECT_TRUE(patient->check_health({}).healthy());
    expect_same_bits(*patient, clean, inputs, "healed backend vs clean");
    healed = true;
  }
  EXPECT_TRUE(healed) << "no seed in [1,32] produced a repairable burst";
}

TEST(TiledMlp, CnnConvStageHealsThroughConvTiles) {
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  core::BuiltModel cnn = core::make_binary_cnn(mc);
  xbar::TileConfig tile;
  tile.crossbar.spare_rows = 4;
  tile.crossbar.spare_cols = 4;
  core::TiledMlp clean(cnn.net, tile, 42);
  ASSERT_GE(clean.conv_stage_count(), 1u);
  ASSERT_TRUE(clean.probe_health({}).healthy());
  const nn::Tensor x = stroke_batch(1);

  device::DefectRates rates;
  rates.open = 0.01;
  bool healed = false;
  for (std::uint64_t seed = 1; seed <= 32 && !healed; ++seed) {
    core::TiledMlp patient = clean.clone();
    patient.inject_defects_at(0, rates, seed);  // conv stage 0
    if (patient.probe_health({}).healthy()) {
      continue;
    }
    const xbar::HealSummary summary = patient.heal({});
    if (!summary.healthy_after) {
      continue;
    }
    EXPECT_TRUE(patient.probe_health({}).healthy());
    patient.reseed(5);
    clean.reseed(5);
    const nn::Tensor healed_logits = patient.forward(x);
    const nn::Tensor clean_logits = clean.forward(x);
    ASSERT_EQ(healed_logits.numel(), clean_logits.numel());
    for (std::size_t i = 0; i < clean_logits.numel(); ++i) {
      EXPECT_EQ(healed_logits[i], clean_logits[i])
          << "healed CNN logit " << i << " must match the clean replica";
    }
    healed = true;
  }
  EXPECT_TRUE(healed) << "no seed in [1,32] produced a repairable conv burst";
}

TEST(TiledMlp, RecalibrateAfterDriftRestoresModelBits) {
  core::BuiltModel model = health_model();
  core::TiledBackendConfig config;
  config.mc_samples = 2;
  core::TiledBackend drifted(model.net, config);
  core::TiledBackend clean(model.net, config);
  const nn::Tensor inputs = stroke_batch(3);

  expect_same_bits(drifted, clean, inputs, "before drift");
  drifted.apply_drift(0.15, 606);
  drifted.apply_drift(0.15, 607);  // compounding epochs
  EXPECT_TRUE(drifted.check_health({}).drift_suspected ||
              !drifted.check_health({}).healthy())
      << "strong compounded drift must be noticed";
  const std::size_t moved = drifted.recalibrate();
  EXPECT_GT(moved, 0u);
  EXPECT_TRUE(drifted.check_health({}).healthy());
  expect_same_bits(drifted, clean, inputs, "after recalibration");
}

}  // namespace
