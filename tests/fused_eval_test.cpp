// Fused batched Monte-Carlo path: core::predict_fused_batch stacks the T
// stochastic passes of B requests into one (B*T x F) forward per layer.
// Its contract — pinned here as a property over arbitrary (method, B, T,
// worker count) — is bitwise equality with the unfused per-request loop:
// every row's Prediction must equal McPredictor(T, seed_b).predict(row_b)
// on a reseeding replica, the serving runtime's batch-of-one reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "core/bayesian.h"
#include "core/hw_model.h"
#include "core/models.h"
#include "core/thread_pool.h"
#include "data/strokes.h"
#include "nn/model.h"

namespace {

using namespace neuspin;

nn::Dataset tiny_dataset(std::uint64_t seed, std::size_t per_class = 4) {
  data::StrokeConfig sc;
  sc.samples_per_class = per_class;
  return data::standardize_per_sample(data::make_stroke_digits_flat(sc, seed));
}

core::BuiltModel build_model(core::Method method, bool hw_noise) {
  core::ModelConfig mc;
  mc.method = method;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  if (hw_noise) {
    mc.hw.enabled = true;
    mc.hw.quant_levels = 64;
    mc.hw.noise_fraction = 0.02f;
  }
  core::BuiltModel model = core::make_binary_mlp(mc, 256, {32, 16}, 10);
  if (method == core::Method::kSpinBayes) {
    core::convert_to_spinbayes(model, mc.spinbayes);
  }
  return model;
}

/// Unfused reference: the per-request Monte-Carlo loop every request of
/// the serving runtime used to run — optionally fanned over the pool with
/// `workers` replicas to confirm thread count does not matter either.
std::vector<core::Prediction> unfused_reference(const core::BuiltModel& model,
                                                const nn::Tensor& inputs,
                                                const std::vector<std::uint64_t>& seeds,
                                                std::size_t mc_samples,
                                                std::size_t workers) {
  std::vector<core::BuiltModel> replicas;
  std::vector<core::McPredictor::SeededForward> forwards;
  replicas.reserve(workers);
  forwards.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    replicas.push_back(model.clone());
    replicas.back().enable_mc(true);
  }
  for (auto& replica : replicas) {
    forwards.push_back([&replica](const nn::Tensor& x, std::uint64_t pass_seed) {
      replica.reseed_stochastic(pass_seed);
      return replica.stochastic_logits(x);
    });
  }
  std::vector<core::Prediction> out;
  out.reserve(inputs.dim(0));
  for (std::size_t b = 0; b < inputs.dim(0); ++b) {
    nn::Tensor row({1, inputs.dim(1)});
    for (std::size_t f = 0; f < inputs.dim(1); ++f) {
      row.at(0, f) = inputs.at(b, f);
    }
    const core::McPredictor predictor(mc_samples, seeds[b]);
    out.push_back(workers <= 1
                      ? predictor.predict(row, forwards.front())
                      : predictor.predict(row, forwards, core::ThreadPool::shared()));
  }
  return out;
}

void expect_bitwise_equal(const core::Prediction& fused,
                          const core::Prediction& reference, std::size_t row) {
  ASSERT_EQ(fused.mean_probs.numel(), reference.mean_probs.numel());
  for (std::size_t c = 0; c < fused.mean_probs.numel(); ++c) {
    ASSERT_EQ(fused.mean_probs[c], reference.mean_probs[c])
        << "row " << row << " class " << c;
  }
  ASSERT_EQ(fused.entropy.front(), reference.entropy.front()) << "row " << row;
  ASSERT_EQ(fused.mutual_info.front(), reference.mutual_info.front()) << "row " << row;
  ASSERT_EQ(fused.member_probs.size(), reference.member_probs.size());
  for (std::size_t t = 0; t < fused.member_probs.size(); ++t) {
    for (std::size_t c = 0; c < fused.member_probs[t].numel(); ++c) {
      ASSERT_EQ(fused.member_probs[t][c], reference.member_probs[t][c])
          << "row " << row << " pass " << t << " class " << c;
    }
  }
}

// ------------------------------------------------- the fused == unfused ----

struct FusedCase {
  core::Method method;
  bool hw_noise;
  std::size_t batch;
  std::size_t mc_samples;
  std::size_t workers;
};

class FusedMatchesUnfused : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedMatchesUnfused, BitwiseAcrossBatchSamplesAndWorkers) {
  const FusedCase c = GetParam();
  const core::BuiltModel model = build_model(c.method, c.hw_noise);
  const nn::Dataset data = tiny_dataset(31);
  ASSERT_GE(data.size(), c.batch);
  const nn::Tensor inputs = data.batch(0, c.batch).first;

  std::vector<std::uint64_t> seeds(c.batch);
  for (std::size_t b = 0; b < c.batch; ++b) {
    seeds[b] = nn::mix_seed(0xfeed, b);
  }

  core::BuiltModel fused_model = model.clone();
  fused_model.enable_mc(true);
  const std::vector<core::Prediction> fused =
      core::predict_fused_batch(fused_model, inputs, seeds, c.mc_samples);
  const std::vector<core::Prediction> reference =
      unfused_reference(model, inputs, seeds, c.mc_samples, c.workers);

  ASSERT_EQ(fused.size(), c.batch);
  for (std::size_t b = 0; b < c.batch; ++b) {
    expect_bitwise_equal(fused[b], reference[b], b);
  }

  // Pool-partitioned fused path: a team of c.workers clones splitting the
  // stacked rows into contiguous partitions over the shared pool must
  // reproduce the same bits — the partition is invisible in the results.
  std::vector<core::BuiltModel> team;
  team.reserve(c.workers);
  for (std::size_t w = 0; w < c.workers; ++w) {
    team.push_back(model.clone());
    team.back().enable_mc(true);
  }
  const std::vector<core::Prediction> pooled = core::predict_fused_batch(
      std::span<core::BuiltModel>(team), inputs, seeds, c.mc_samples);
  ASSERT_EQ(pooled.size(), c.batch);
  for (std::size_t b = 0; b < c.batch; ++b) {
    expect_bitwise_equal(pooled[b], reference[b], b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndShapes, FusedMatchesUnfused,
    ::testing::Values(
        FusedCase{core::Method::kSpinDrop, false, 1, 1, 1},
        FusedCase{core::Method::kSpinDrop, false, 7, 5, 1},
        FusedCase{core::Method::kSpinDrop, false, 16, 8, 4},
        FusedCase{core::Method::kSpinDrop, true, 6, 4, 2},
        FusedCase{core::Method::kSpatialSpinDrop, false, 5, 6, 3},
        FusedCase{core::Method::kSpinScaleDrop, false, 9, 4, 2},
        FusedCase{core::Method::kSpinScaleDrop, true, 4, 3, 1},
        FusedCase{core::Method::kAffineDropout, false, 8, 5, 2},
        FusedCase{core::Method::kSubsetVi, false, 6, 7, 3},
        FusedCase{core::Method::kSpinBayes, false, 10, 4, 2}));

// A fused batch must also be insensitive to its companions: serving the
// same row inside different stacks may never change its prediction.
TEST(FusedBatch, RowResultsAreCompositionInvariant) {
  const core::BuiltModel model = build_model(core::Method::kSpinDrop, false);
  const nn::Dataset data = tiny_dataset(33);
  const nn::Tensor inputs = data.batch(0, 12).first;
  std::vector<std::uint64_t> seeds(12);
  for (std::size_t b = 0; b < 12; ++b) {
    seeds[b] = nn::mix_seed(0xabc, b);
  }

  core::BuiltModel all_model = model.clone();
  all_model.enable_mc(true);
  const auto all = core::predict_fused_batch(all_model, inputs, seeds, 5);

  // Same rows, sliced into two unequal stacks.
  for (const auto& [begin, end] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 5}, {5, 12}}) {
    const nn::Tensor part = data.batch(begin, end).first;
    std::vector<std::uint64_t> part_seeds(seeds.begin() + begin, seeds.begin() + end);
    core::BuiltModel part_model = model.clone();
    part_model.enable_mc(true);
    const auto sliced =
        core::predict_fused_batch(part_model, part, part_seeds, 5);
    for (std::size_t b = begin; b < end; ++b) {
      expect_bitwise_equal(sliced[b - begin], all[b], b);
    }
  }
}

// Oversized teams (more members than stacked rows) must cap their chunk
// count instead of handing empty partitions to clones, and still match.
TEST(FusedBatch, TeamLargerThanStackStillMatches) {
  const core::BuiltModel model = build_model(core::Method::kSpinDrop, false);
  const nn::Dataset data = tiny_dataset(36);
  const std::size_t batch = 3;
  const std::size_t mc_samples = 2;
  const nn::Tensor inputs = data.batch(0, batch).first;
  std::vector<std::uint64_t> seeds(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    seeds[b] = nn::mix_seed(0xbee, b);
  }
  const std::vector<core::Prediction> reference =
      unfused_reference(model, inputs, seeds, mc_samples, 1);

  // 16 members (more than the 6 stacked rows) and 4 members (a ragged
  // ceil partition of 6: chunk sizes 2,2,2 and an empty tail chunk) both
  // exercise the partition edge cases.
  for (const std::size_t team_size : {16, 4}) {
    std::vector<core::BuiltModel> team;
    for (std::size_t w = 0; w < team_size; ++w) {
      team.push_back(model.clone());
      team.back().enable_mc(true);
    }
    const auto pooled = core::predict_fused_batch(std::span<core::BuiltModel>(team),
                                                  inputs, seeds, mc_samples);
    ASSERT_EQ(pooled.size(), batch);
    for (std::size_t b = 0; b < batch; ++b) {
      expect_bitwise_equal(pooled[b], reference[b], b);
    }
  }
}

TEST(FusedBatch, RejectsBadArguments) {
  const std::vector<std::uint64_t> team_seeds{1, 2};
  const nn::Tensor team_inputs({2, 4}, 1.0f);
  EXPECT_THROW((void)core::predict_fused_batch(std::span<core::BuiltModel>{},
                                               team_inputs, team_seeds, 3),
               std::invalid_argument);
  core::BuiltModel model = build_model(core::Method::kSpinDrop, false);
  model.enable_mc(true);
  const nn::Dataset data = tiny_dataset(34, 1);
  const nn::Tensor inputs = data.batch(0, 2).first;
  const std::vector<std::uint64_t> seeds{1, 2};
  EXPECT_THROW((void)core::predict_fused_batch(model, inputs, seeds, 0),
               std::invalid_argument);
  const std::vector<std::uint64_t> short_seeds{1};
  EXPECT_THROW((void)core::predict_fused_batch(model, inputs, short_seeds, 3),
               std::invalid_argument);
}

// ------------------------------------------------------ tile cloning ----

TEST(TiledClone, CloneServesIdenticalPredictions) {
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  core::BuiltModel model = core::make_binary_mlp(mc, 256, {16}, 10);
  const nn::Dataset data = tiny_dataset(35, 1);
  const nn::Tensor inputs = data.batch(0, 3).first;

  xbar::TileConfig tile;
  tile.read_noise_sigma = 0.01;  // exercise the stochastic electrical path
  core::BuiltModel staging = model.clone();
  core::TiledMlp original(staging.net, tile, 42);
  // Mutate post-construction state too: injected defects must survive the
  // copy (a rebuild from the seed would lose them).
  device::DefectRates rates;
  rates.stuck_at_p = 0.01;
  original.inject_defects(rates, 5);
  core::TiledMlp copy = original.clone();

  for (std::size_t pass = 0; pass < 3; ++pass) {
    original.reseed(100 + pass);
    copy.reseed(100 + pass);
    const nn::Tensor a = original.forward_spindrop(inputs, 0.2, nullptr);
    const nn::Tensor b = copy.forward_spindrop(inputs, 0.2, nullptr);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::size_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "pass " << pass << " element " << i;
    }
  }
}

}  // namespace
