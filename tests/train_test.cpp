// Contracts of the data-parallel training engine (src/train/):
//
//  * Dataset::batch(order, ...) gather == materialized-shuffle slicing.
//  * Gradient accumulation across backward passes + Sequential::zero_grad.
//  * train::Trainer at shards == 1 replays the historical serial loop bit
//    for bit (pinned against an inline copy of the pre-Trainer loop), and
//    the nn::train_classifier wrapper routes through it unchanged.
//  * The worker-invariance contract: for a fixed shard grid, trained
//    parameters are bitwise identical for ANY worker count — including
//    counts above the hardware and the shared pool size — across batch
//    sizes that do not divide evenly, on an MLP and a CNN, and through
//    core::fit with a method regularizer attached.
//  * clip_grad_norm / decoupled weight decay units; EpochStats throughput.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/models.h"
#include "core/pipeline.h"
#include "core/spindrop.h"
#include "data/clusters.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optim.h"
#include "train/trainer.h"

namespace {

using namespace neuspin;

/// Snapshot every learnable scalar (bit pattern) of a model.
std::vector<std::uint32_t> param_bits(nn::Sequential& model) {
  std::vector<std::uint32_t> bits;
  for (const auto& p : model.parameters()) {
    for (std::size_t i = 0; i < p.value->numel(); ++i) {
      bits.push_back(std::bit_cast<std::uint32_t>((*p.value)[i]));
    }
  }
  for (nn::Tensor* t : model.state_tensors()) {
    for (std::size_t i = 0; i < t->numel(); ++i) {
      bits.push_back(std::bit_cast<std::uint32_t>((*t)[i]));
    }
  }
  return bits;
}

/// Small classification dataset (deterministic).
nn::Dataset make_dataset(std::size_t samples, std::size_t features,
                         std::size_t classes, std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  nn::Dataset data;
  data.inputs = nn::Tensor::randn({samples, features}, 1.0f, engine);
  data.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    data.labels[i] = i % classes;
    // Nudge the labelled class's first feature so the problem is learnable.
    data.inputs.at(i, data.labels[i] % features) += 2.0f;
  }
  return data;
}

/// MLP with every stochastic-training flavour that must honour the
/// invariance contract: per-sample masks (Dropout, SpinDrop) and
/// batch-coupled normalization state (BatchNorm).
nn::Sequential make_stochastic_mlp(std::size_t features, std::size_t classes,
                                   std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  nn::Sequential model;
  model.emplace<nn::Dense>(features, 16, engine);
  model.emplace<nn::BatchNorm>(16);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dropout>(0.25f, seed + 1);
  model.add(core::make_pseudo_spindrop(core::DropGranularity::kNeuron, 16, 0.2,
                                       seed + 2));
  model.emplace<nn::Dense>(16, classes, engine);
  return model;
}

nn::Sequential make_tiny_cnn(std::size_t classes, std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 4, 3, 1, engine);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dropout>(0.2f, seed + 1);
  model.emplace<nn::Dense>(4 * 4 * 4, classes, engine);
  return model;
}

nn::Dataset make_image_dataset(std::size_t samples, std::size_t classes,
                               std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  nn::Dataset data;
  data.inputs = nn::Tensor::randn({samples, 1, 8, 8}, 1.0f, engine);
  data.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    data.labels[i] = i % classes;
  }
  return data;
}

// ------------------------------------------------------------ batching ----

TEST(GatherBatch, MatchesMaterializedShuffle) {
  const nn::Dataset data = make_dataset(23, 5, 3, 99);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 engine(7);
  std::shuffle(order.begin(), order.end(), engine);

  // Materialize the reordered dataset the way the old loop did.
  nn::Dataset shuffled;
  shuffled.inputs = nn::Tensor(data.inputs.shape());
  shuffled.labels.resize(data.size());
  const std::size_t per_sample = data.inputs.numel() / data.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = 0; j < per_sample; ++j) {
      shuffled.inputs[i * per_sample + j] = data.inputs[order[i] * per_sample + j];
    }
    shuffled.labels[i] = data.labels[order[i]];
  }

  for (std::size_t begin = 0; begin < data.size(); begin += 7) {
    const std::size_t end = std::min<std::size_t>(begin + 7, data.size());
    auto [ref_inputs, ref_labels] = shuffled.batch(begin, end);
    auto [got_inputs, got_labels] = data.batch(order, begin, end);
    ASSERT_EQ(ref_labels, got_labels);
    ASSERT_EQ(ref_inputs.shape(), got_inputs.shape());
    for (std::size_t i = 0; i < ref_inputs.numel(); ++i) {
      ASSERT_EQ(ref_inputs[i], got_inputs[i]);
    }
  }
}

TEST(GatherBatch, RejectsBadRanges) {
  const nn::Dataset data = make_dataset(8, 3, 2, 1);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  EXPECT_THROW((void)data.batch(order, 4, 4), std::out_of_range);
  EXPECT_THROW((void)data.batch(order, 0, data.size() + 1), std::out_of_range);
  order[0] = 99;
  EXPECT_THROW((void)data.batch(order, 0, 2), std::out_of_range);
}

// ------------------------------------------- gradient accumulation API ----

TEST(GradAccumulation, BackwardAccumulatesAndZeroGradClears) {
  std::mt19937_64 engine(3);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, engine);
  nn::Tensor x = nn::Tensor::randn({5, 4}, 1.0f, engine);
  nn::Tensor g = nn::Tensor::randn({5, 3}, 1.0f, engine);

  (void)model.forward(x, true);
  (void)model.backward(g);
  std::vector<float> once;
  for (const auto& p : model.parameters()) {
    for (std::size_t i = 0; i < p.grad->numel(); ++i) {
      once.push_back((*p.grad)[i]);
    }
  }
  (void)model.forward(x, true);
  (void)model.backward(g);
  std::size_t k = 0;
  for (const auto& p : model.parameters()) {
    for (std::size_t i = 0; i < p.grad->numel(); ++i, ++k) {
      EXPECT_FLOAT_EQ((*p.grad)[i], 2.0f * once[k]);
    }
  }
  model.zero_grad();
  for (const auto& p : model.parameters()) {
    for (std::size_t i = 0; i < p.grad->numel(); ++i) {
      EXPECT_EQ((*p.grad)[i], 0.0f);
    }
  }
}

TEST(GradAccumulation, SpinDropTrainingRowModeMatchesBatchOfOne) {
  // The sharded trainer's mask contract: a training forward in row mode
  // draws sample r's mask from row_seeds[r], bit for bit the batch-of-one
  // training forward after reseed(row_seeds[r]).
  const std::vector<std::uint64_t> row_seeds = {0xabcdull, 0x1234ull, 0x77ull};
  std::mt19937_64 engine(5);
  const nn::Tensor batch = nn::Tensor::uniform({3, 6}, 0.5f, 2.0f, engine);

  auto rows_layer = core::make_pseudo_spindrop(core::DropGranularity::kNeuron, 6,
                                               0.45, 1);
  rows_layer->reseed_rows(row_seeds);
  const nn::Tensor fused = rows_layer->forward(batch, /*training=*/true);

  for (std::size_t r = 0; r < row_seeds.size(); ++r) {
    auto one = core::make_pseudo_spindrop(core::DropGranularity::kNeuron, 6, 0.45, 1);
    one->reseed(row_seeds[r]);
    nn::Tensor row({1, 6});
    for (std::size_t j = 0; j < 6; ++j) {
      row.at(0, j) = batch.at(r, j);
    }
    const nn::Tensor expect = one->forward(row, /*training=*/true);
    for (std::size_t j = 0; j < 6; ++j) {
      ASSERT_EQ(expect.at(0, j), fused.at(r, j)) << "row " << r << " col " << j;
    }
  }
}

// --------------------------------------------------- serial exactness ----

/// Inline copy of the pre-Trainer nn::train_classifier loop (per-epoch
/// dataset materialization included) — the bitwise reference the serial
/// path must keep matching.
std::vector<float> legacy_loop(nn::Sequential& model, const nn::Dataset& train,
                               const nn::TrainConfig& config) {
  nn::Adam optimizer(model.parameters(), config.lr);
  std::mt19937_64 shuffle_engine(config.shuffle_seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<float> losses;
  const std::size_t per_sample = train.inputs.numel() / train.size();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_lr(config.lr *
                     std::pow(config.lr_decay,
                              static_cast<float>(epoch / std::max<std::size_t>(
                                                             config.lr_decay_period, 1))));
    std::shuffle(order.begin(), order.end(), shuffle_engine);
    nn::Dataset data;
    data.inputs = nn::Tensor(train.inputs.shape());
    data.labels.resize(train.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = 0; j < per_sample; ++j) {
        data.inputs[i * per_sample + j] = train.inputs[order[i] * per_sample + j];
      }
      data.labels[i] = train.labels[order[i]];
    }
    for (std::size_t begin = 0; begin < data.size(); begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, data.size());
      auto [inputs, labels] = data.batch(begin, end);
      nn::Tensor logits = model.forward(inputs, true);
      nn::LossResult loss =
          nn::softmax_cross_entropy(logits, labels, config.label_smoothing);
      if (config.regularizer) {
        loss.value += config.regularizer();
      }
      (void)model.backward(loss.grad);
      optimizer.step();
      losses.push_back(loss.value);
    }
  }
  return losses;
}

TEST(TrainerSerial, BitwiseEqualToLegacyLoop) {
  const nn::Dataset data = make_dataset(50, 8, 3, 11);
  nn::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 16;  // ragged tail: 50 % 16 != 0
  config.label_smoothing = 0.1f;

  nn::Sequential reference = make_stochastic_mlp(8, 3, 42);
  nn::Sequential subject = reference.clone();
  (void)legacy_loop(reference, data, config);
  (void)nn::train_classifier(subject, data, config);
  EXPECT_EQ(param_bits(reference), param_bits(subject));
}

TEST(TrainerSerial, WorkersIgnoredAtOneShard) {
  const nn::Dataset data = make_dataset(40, 6, 2, 5);
  nn::Sequential a = make_stochastic_mlp(6, 2, 17);
  nn::Sequential b = a.clone();

  train::TrainerConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.shards = 1;
  config.workers = 1;
  train::Trainer ta(a, config);
  (void)ta.fit(data);
  config.workers = 16;  // way past the hardware: still the serial path
  train::Trainer tb(b, config);
  (void)tb.fit(data);
  EXPECT_EQ(param_bits(a), param_bits(b));
}

TEST(TrainerSerial, ClearsStaleRowModeAndGradients) {
  const nn::Dataset data = make_dataset(20, 6, 2, 13);
  nn::Sequential clean = make_stochastic_mlp(6, 2, 29);
  nn::Sequential dirty = clean.clone();

  // Contaminate without touching any RNG engine: sticky row mode from a
  // fused-MC eval pass (size != any training batch) and externally
  // accumulated gradients.
  const std::vector<std::uint64_t> stale_seeds(9, 0xdeadull);
  dirty.reseed_rows(stale_seeds);
  for (auto& p : dirty.parameters()) {
    p.grad->fill(1.0f);
  }

  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 5;
  (void)nn::train_classifier(clean, data, config);
  (void)nn::train_classifier(dirty, data, config);  // pre-fix: SpinDrop threw
  EXPECT_EQ(param_bits(clean), param_bits(dirty));
}

TEST(TrainerInvariance, ManyShardsKeepRunningStatisticsFinite) {
  // shards * BatchNorm momentum > 1 (16 * 0.1): the state fold must stay a
  // convex combination — a raw delta sum would scale the prior's
  // coefficient to 1 - 1.6 and, with low-variance activations (inputs
  // scaled well below the running_var init of 1), drive running_var
  // negative and every later eval forward to NaN.
  // A single 64-row step: the raw-sum recurrence oscillates (ratio
  // |1 - shards*momentum| < 1 here), so the sign flip is visible after an
  // odd number of steps.
  nn::Dataset data = make_dataset(64, 6, 2, 41);
  data.inputs *= 0.05f;
  const nn::Sequential init = make_stochastic_mlp(6, 2, 37);
  std::vector<std::uint32_t> reference;
  for (std::size_t workers : {1, 16}) {
    nn::Sequential model = init.clone();
    train::TrainerConfig config;
    config.epochs = 1;
    config.batch_size = 64;
    config.shards = 16;
    config.workers = workers;
    train::Trainer trainer(model, config);
    (void)trainer.fit(data);
    for (nn::Tensor* state : model.state_tensors()) {
      for (std::size_t i = 0; i < state->numel(); ++i) {
        ASSERT_TRUE(std::isfinite((*state)[i]));
      }
    }
    auto& bn = dynamic_cast<nn::BatchNorm&>(model.layer(1));
    for (std::size_t f = 0; f < bn.features(); ++f) {
      ASSERT_GT(bn.running_var()[f], 0.0f) << "feature " << f;
    }
    const float acc = nn::evaluate_accuracy(model, data);
    ASSERT_TRUE(std::isfinite(acc));
    const auto bits = param_bits(model);
    if (reference.empty()) {
      reference = bits;
    } else {
      EXPECT_EQ(reference, bits);
    }
  }
}

// ------------------------------------------------- worker invariance ----

TEST(TrainerInvariance, AnyWorkerCountMlp) {
  const std::size_t features = 8;
  const std::size_t classes = 3;
  const nn::Dataset data = make_dataset(53, features, classes, 23);
  const nn::Sequential init = make_stochastic_mlp(features, classes, 7);

  for (std::size_t shards : {2, 5}) {
    for (std::size_t batch : {7, 32}) {  // neither divides 53
      std::vector<std::uint32_t> reference;
      for (std::size_t workers : {1, 2, 5, 13}) {
        nn::Sequential model = init.clone();
        train::TrainerConfig config;
        config.epochs = 2;
        config.batch_size = batch;
        config.shards = shards;
        config.workers = workers;
        config.label_smoothing = 0.05f;
        train::Trainer trainer(model, config);
        (void)trainer.fit(data);
        const auto bits = param_bits(model);
        if (reference.empty()) {
          reference = bits;
        } else {
          EXPECT_EQ(reference, bits)
              << "shards=" << shards << " batch=" << batch << " workers=" << workers;
        }
      }
    }
  }
}

TEST(TrainerInvariance, AnyWorkerCountCnn) {
  const nn::Dataset data = make_image_dataset(30, 4, 31);
  const nn::Sequential init = make_tiny_cnn(4, 3);

  std::vector<std::uint32_t> reference;
  for (std::size_t workers : {1, 4}) {
    nn::Sequential model = init.clone();
    train::TrainerConfig config;
    config.epochs = 2;
    config.batch_size = 8;
    config.shards = 3;
    config.workers = workers;
    train::Trainer trainer(model, config);
    (void)trainer.fit(data);
    const auto bits = param_bits(model);
    if (reference.empty()) {
      reference = bits;
    } else {
      EXPECT_EQ(reference, bits) << "workers=" << workers;
    }
  }
}

TEST(TrainerInvariance, GradClipAndWeightDecayPreserveInvariance) {
  const nn::Dataset data = make_dataset(24, 6, 3, 77);
  const nn::Sequential init = make_stochastic_mlp(6, 3, 19);
  std::vector<std::uint32_t> reference;
  for (std::size_t workers : {1, 6}) {
    nn::Sequential model = init.clone();
    train::TrainerConfig config;
    config.epochs = 2;
    config.batch_size = 10;
    config.shards = 4;
    config.workers = workers;
    config.grad_clip = 0.5f;
    config.weight_decay = 1e-2f;
    train::Trainer trainer(model, config);
    (void)trainer.fit(data);
    const auto bits = param_bits(model);
    if (reference.empty()) {
      reference = bits;
    } else {
      EXPECT_EQ(reference, bits);
    }
  }
}

TEST(TrainerInvariance, FitThroughTrainerWithMethodRegularizer) {
  data::ClusterConfig clusters;
  clusters.classes = 3;
  clusters.dimensions = 8;
  clusters.samples_per_class = 12;
  const nn::Dataset data = data::make_gaussian_clusters(clusters, 3);

  core::ModelConfig mc;
  mc.method = core::Method::kSubsetVi;  // KL regularizer on the primary
  mc.seed = 9;
  std::vector<std::uint32_t> reference;
  for (std::size_t workers : {1, 4}) {
    core::BuiltModel model = core::make_binary_mlp(mc, 8, {12}, 3);
    core::FitConfig fc;
    fc.epochs = 2;
    fc.batch_size = 9;
    fc.shards = 3;
    fc.workers = workers;
    (void)core::fit(model, data, fc);
    const auto bits = param_bits(model.net);
    if (reference.empty()) {
      reference = bits;
    } else {
      EXPECT_EQ(reference, bits);
    }
  }
}

// ------------------------------------------------------ optim units ----

TEST(Optim, ClipGradNormScalesToMaxNorm) {
  nn::Tensor value({4}, 1.0f);
  nn::Tensor grad({4}, 3.0f);  // norm = sqrt(4 * 9) = 6
  std::vector<nn::ParamRef> params = {{&value, &grad}};
  EXPECT_FLOAT_EQ(nn::global_grad_norm(params), 6.0f);

  const float pre = nn::clip_grad_norm(params, 1.5f);
  EXPECT_FLOAT_EQ(pre, 6.0f);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(grad[i], 3.0f * (1.5f / 6.0f));
  }
  EXPECT_FLOAT_EQ(nn::global_grad_norm(params), 1.5f);

  // Below the threshold (and <= 0): untouched.
  const float kept = nn::clip_grad_norm(params, 10.0f);
  EXPECT_FLOAT_EQ(kept, 1.5f);
  EXPECT_FLOAT_EQ(grad[0], 0.75f);
  (void)nn::clip_grad_norm(params, 0.0f);
  EXPECT_FLOAT_EQ(grad[0], 0.75f);
}

TEST(Optim, DecoupledWeightDecayShrinksParameters) {
  nn::Tensor value({1}, 2.0f);
  nn::Tensor grad({1}, 0.0f);  // zero gradient isolates the decay term
  nn::Adam adam({{&value, &grad}}, /*lr=*/0.1f, 0.9f, 0.999f, 1e-8f,
                /*weight_decay=*/0.1f);
  adam.step();
  // mhat = 0 -> update is pure decay: v -= lr * wd * v.
  EXPECT_FLOAT_EQ(value[0], 2.0f - 0.1f * 0.1f * 2.0f);

  // weight_decay = 0 stays classic Adam (no drift on zero gradients).
  nn::Tensor value2({1}, 2.0f);
  nn::Tensor grad2({1}, 0.0f);
  nn::Adam plain({{&value2, &grad2}}, 0.1f);
  plain.step();
  EXPECT_FLOAT_EQ(value2[0], 2.0f);
}

// -------------------------------------------------- stats & plumbing ----

TEST(TrainerStats, ThroughputAndCallback) {
  const nn::Dataset data = make_dataset(32, 5, 2, 3);
  nn::Sequential model = make_stochastic_mlp(5, 2, 21);
  train::TrainerConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.shards = 2;
  train::Trainer trainer(model, config);
  std::size_t callbacks = 0;
  trainer.set_epoch_callback([&callbacks](std::size_t epoch, const nn::EpochStats& s) {
    EXPECT_EQ(epoch, callbacks);
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GT(s.examples_per_sec, 0.0);
    ++callbacks;
  });
  const auto history = trainer.fit(data);
  EXPECT_EQ(callbacks, 2u);
  ASSERT_EQ(history.size(), 2u);
  for (const auto& epoch : history) {
    EXPECT_GT(epoch.examples_per_sec, 0.0);
    EXPECT_GE(epoch.train_accuracy, 0.0f);
    EXPECT_LE(epoch.train_accuracy, 1.0f);
  }
}

TEST(TrainerStats, TrainingLearnsTheClusters) {
  data::ClusterConfig clusters;
  clusters.classes = 3;
  clusters.dimensions = 6;
  clusters.samples_per_class = 40;
  const nn::Dataset data = data::make_gaussian_clusters(clusters, 4);
  nn::Sequential model = make_stochastic_mlp(6, 3, 2);
  train::TrainerConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.shards = 3;
  train::Trainer trainer(model, config);
  const auto history = trainer.fit(data);
  EXPECT_GT(history.back().train_accuracy, 0.8f);
  EXPECT_GT(nn::evaluate_accuracy(model, data), 0.8f);
}

TEST(TrainerErrors, EmptyDatasetAndZeroBatch) {
  nn::Sequential model = make_stochastic_mlp(4, 2, 1);
  train::TrainerConfig config;
  config.batch_size = 0;
  EXPECT_THROW(train::Trainer(model, config), std::invalid_argument);

  train::TrainerConfig ok;
  train::Trainer trainer(model, ok);
  EXPECT_THROW((void)trainer.fit(nn::Dataset{}), std::invalid_argument);
}

}  // namespace
