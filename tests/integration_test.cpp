// Integration tests: end-to-end training + Bayesian evaluation of every
// method on small tasks, hardware-consistency of the tile path, and the
// fault-injection / OOD protocols.
#include <gtest/gtest.h>

#include "core/hw_model.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/clusters.h"
#include "data/ood.h"
#include "data/strokes.h"

namespace neuspin::core {
namespace {

/// Small, fast cluster task every method must learn.
struct ClusterTask {
  nn::Dataset train;
  nn::Dataset test;
};

ClusterTask make_task(std::uint64_t seed) {
  data::ClusterConfig cc;
  cc.classes = 4;
  cc.dimensions = 8;
  cc.samples_per_class = 120;
  cc.center_spread = 4.0f;
  cc.cluster_sigma = 0.9f;
  const nn::Dataset all = data::make_gaussian_clusters(cc, seed);
  ClusterTask task;
  auto [train_x, train_y] = all.batch(0, 400);
  task.train = {std::move(train_x), std::move(train_y)};
  auto [test_x, test_y] = all.batch(400, all.size());
  task.test = {std::move(test_x), std::move(test_y)};
  return task;
}

/// Every method trains to usable accuracy on the cluster task and emits
/// probabilities that are calibrated enough to beat a coin flip by far.
class MethodTraining : public ::testing::TestWithParam<Method> {};

TEST_P(MethodTraining, LearnsClusterTask) {
  const ClusterTask task = make_task(5);
  ModelConfig config;
  config.method = GetParam();
  config.dropout_p = 0.1;
  BuiltModel model = make_binary_mlp(config, 8, {32, 32}, 4);
  FitConfig fit_config;
  fit_config.epochs = 10;
  fit_config.kl_weight = 1e-4f;
  (void)fit(model, task.train, fit_config);
  if (GetParam() == Method::kSpinBayes) {
    SpinBayesConfig sb;
    sb.instances = 8;
    convert_to_spinbayes(model, sb);
  }
  const EvalResult ev = evaluate(model, task.test, 10);
  EXPECT_GT(ev.accuracy, 0.85f) << method_name(GetParam())
                                << " failed to learn the cluster task";
  EXPECT_LT(ev.nll, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodTraining,
    ::testing::Values(Method::kDeterministic, Method::kSpinDrop,
                      Method::kSpatialSpinDrop, Method::kSpinScaleDrop,
                      Method::kAffineDropout, Method::kSubsetVi, Method::kSpinBayes),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = method_name(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(McBehaviour, BayesianMethodsAreStochasticAtInference) {
  const ClusterTask task = make_task(6);
  for (Method method : {Method::kSpinDrop, Method::kSpinScaleDrop, Method::kSubsetVi}) {
    ModelConfig config;
    config.method = method;
    config.dropout_p = 0.3;
    config.adaptive_p = false;  // keep the scale-dropout rate high & fixed
    BuiltModel model = make_binary_mlp(config, 8, {32}, 4);
    FitConfig fc;
    fc.epochs = 4;
    (void)fit(model, task.train, fc);
    model.enable_mc(true);
    auto [x, y] = task.test.batch(0, 16);
    const nn::Tensor a = model.stochastic_logits(x);
    bool any_diff = false;
    for (int tries = 0; tries < 40 && !any_diff; ++tries) {
      const nn::Tensor b = model.stochastic_logits(x);
      for (std::size_t i = 0; i < a.numel(); ++i) {
        if (a[i] != b[i]) {
          any_diff = true;
          break;
        }
      }
    }
    EXPECT_TRUE(any_diff) << method_name(method) << " must be stochastic in MC mode";
    model.enable_mc(false);
    const nn::Tensor c = model.stochastic_logits(x);
    const nn::Tensor d = model.stochastic_logits(x);
    for (std::size_t i = 0; i < c.numel(); ++i) {
      ASSERT_FLOAT_EQ(c[i], d[i])
          << method_name(method) << " must be deterministic outside MC mode";
    }
  }
}

TEST(HwConsistency, TiledMlpMatchesSoftwareInference) {
  // Train a small binary MLP in software, deploy on ideal tiles, and
  // require argmax agreement on nearly all samples (quantization may flip
  // borderline cases).
  data::StrokeConfig sc;
  sc.samples_per_class = 60;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 7));
  sc.samples_per_class = 20;
  const nn::Dataset test =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 8));

  ModelConfig config;
  config.method = Method::kDeterministic;
  BuiltModel model = make_binary_mlp(config, 256, {64}, 10);
  FitConfig fc;
  fc.epochs = 6;
  (void)fit(model, train, fc);

  xbar::TileConfig tile_config;  // ideal devices
  tile_config.adc_bits = 10;
  TiledMlp hardware(model.net, tile_config, 9);

  const nn::Tensor sw_logits = model.net.forward(test.inputs, false);
  const nn::Tensor hw_logits = hardware.forward(test.inputs);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    std::size_t sw_best = 0;
    std::size_t hw_best = 0;
    for (std::size_t j = 1; j < 10; ++j) {
      if (sw_logits.at(i, j) > sw_logits.at(i, sw_best)) {
        sw_best = j;
      }
      if (hw_logits.at(i, j) > hw_logits.at(i, hw_best)) {
        hw_best = j;
      }
    }
    if (sw_best == hw_best) {
      ++agree;
    }
  }
  EXPECT_GT(static_cast<float>(agree) / static_cast<float>(test.size()), 0.85f)
      << "ideal-device tile inference must track software inference";
}

TEST(HwConsistency, DefectsDegradeTiledAccuracyMonotonically) {
  data::StrokeConfig sc;
  sc.samples_per_class = 60;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 10));
  sc.samples_per_class = 15;
  const nn::Dataset test =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 11));

  ModelConfig config;
  config.method = Method::kDeterministic;
  BuiltModel model = make_binary_mlp(config, 256, {64}, 10);
  FitConfig fc;
  fc.epochs = 6;
  (void)fit(model, train, fc);

  auto tiled_accuracy = [&](double stuck_rate) {
    xbar::TileConfig tc;
    TiledMlp hw(model.net, tc, 12);
    if (stuck_rate > 0.0) {
      device::DefectRates rates;
      rates.stuck_at_p = stuck_rate / 2.0;
      rates.stuck_at_ap = stuck_rate / 2.0;
      hw.inject_defects(rates, 13);
    }
    const nn::Tensor logits = hw.forward(test.inputs);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      std::size_t best = 0;
      for (std::size_t j = 1; j < 10; ++j) {
        if (logits.at(i, j) > logits.at(i, best)) {
          best = j;
        }
      }
      if (best == test.labels[i]) {
        ++correct;
      }
    }
    return static_cast<float>(correct) / static_cast<float>(test.size());
  };

  const float clean = tiled_accuracy(0.0);
  const float heavy = tiled_accuracy(0.4);
  EXPECT_GT(clean, 0.75f);
  EXPECT_LT(heavy, clean) << "40% stuck-at cells must cost accuracy";
}

TEST(FaultInjection, AffineDropoutHealsBetterThanPlain) {
  const ClusterTask task = make_task(14);
  auto train_and_break = [&](Method method) {
    ModelConfig config;
    config.method = method;
    config.dropout_p = 0.15;
    BuiltModel model = make_binary_mlp(config, 8, {32, 32}, 4);
    FitConfig fc;
    fc.epochs = 10;
    (void)fit(model, task.train, fc);
    for (auto* inv : model.inv_norm_layers) {
      inv->enable_self_healing(true);
    }
    (void)inject_weight_defects(model.net, 0.15f, 15);
    return evaluate(model, task.test, method == Method::kDeterministic ? 1 : 20)
        .accuracy;
  };
  const float plain = train_and_break(Method::kDeterministic);
  const float healing = train_and_break(Method::kAffineDropout);
  EXPECT_GT(healing, plain - 0.05f)
      << "self-healing model must not be materially worse under faults";
}

TEST(FaultInjection, SelfHealingModeRecentersFaultShiftedStatistics) {
  // Shift the inputs of an InvertedNorm layer (as accumulated faults
  // would); self-healing evaluation must normalize the shift away while
  // running-stat evaluation must not.
  AffineDropConfig config;
  config.features = 4;
  config.dropout_p = 0.0;
  InvertedNormLayer layer(config);
  std::mt19937_64 engine(21);
  for (int i = 0; i < 50; ++i) {
    nn::Tensor x = nn::Tensor::randn({32, 4}, 1.0f, engine);
    (void)layer.forward(x, true);  // settle running stats at mean 0
  }
  nn::Tensor shifted = nn::Tensor::randn({64, 4}, 1.0f, engine);
  for (std::size_t i = 0; i < shifted.numel(); ++i) {
    shifted[i] += 3.0f;  // the fault-induced distribution shift
  }
  const nn::Tensor stale = layer.forward(shifted, false);
  EXPECT_GT(stale.mean(), 1.0f) << "running stats cannot absorb the shift";
  layer.enable_self_healing(true);
  const nn::Tensor healed = layer.forward(shifted, false);
  EXPECT_NEAR(healed.mean(), 0.0f, 1e-3f) << "batch statistics re-center the layer";
}

TEST(Ood, FarAnomaliesAreDetected) {
  const ClusterTask task = make_task(16);
  ModelConfig config;
  config.method = Method::kSubsetVi;
  BuiltModel model = make_binary_mlp(config, 8, {32, 32}, 4);
  FitConfig fc;
  fc.epochs = 10;
  (void)fit(model, task.train, fc);

  data::ClusterConfig far_cfg;
  far_cfg.classes = 1;
  far_cfg.dimensions = 8;
  far_cfg.samples_per_class = 150;
  far_cfg.center_spread = 10.0f;
  const nn::Dataset anomalies = data::make_gaussian_clusters(far_cfg, 17);
  const OodResult result = evaluate_ood(model, task.test, anomalies, 20);
  EXPECT_GT(result.auroc, 0.9f) << "far-OOD must be nearly separable by entropy";
  EXPECT_GT(result.detection_rate, 0.5f);
}

TEST(SpinBayesConversion, PreservesAccuracy) {
  const ClusterTask task = make_task(18);
  ModelConfig config;
  config.method = Method::kSpinBayes;
  BuiltModel model = make_binary_mlp(config, 8, {32, 32}, 4);
  FitConfig fc;
  fc.epochs = 10;
  fc.kl_weight = 1e-4f;
  (void)fit(model, task.train, fc);
  const float before = evaluate(model, task.test, 20).accuracy;

  SpinBayesConfig sb;
  sb.instances = 8;
  sb.quant_levels = 8;
  convert_to_spinbayes(model, sb);
  const float after = evaluate(model, task.test, 20).accuracy;
  EXPECT_NEAR(after, before, 0.06f)
      << "in-memory approximation must preserve predictive accuracy";
  EXPECT_FALSE(model.spinbayes_layers.empty());
  EXPECT_TRUE(model.bayes_layers.empty());
}

TEST(Regularizers, KlHookAffectsTraining) {
  const ClusterTask task = make_task(19);
  ModelConfig config;
  config.method = Method::kSubsetVi;
  BuiltModel model = make_binary_mlp(config, 8, {16}, 4);
  auto reg = model.make_regularizer(1e-2f, 0.0f);
  ASSERT_TRUE(static_cast<bool>(reg));
  const float kl_before = reg();
  EXPECT_GE(kl_before, 0.0f);
  FitConfig fc;
  fc.epochs = 6;
  fc.kl_weight = 1e-2f;
  (void)fit(model, task.train, fc);
  // Posterior must stay close to the prior under a strong KL weight:
  // mu near 1 for every channel.
  for (auto* layer : model.bayes_layers) {
    for (std::size_t c = 0; c < layer->mu().numel(); ++c) {
      EXPECT_NEAR(layer->mu()[c], 1.0f, 0.5f);
    }
  }
}

}  // namespace
}  // namespace neuspin::core
