// Unit tests for losses, regularizers and optimizers.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/tensor.h"

namespace neuspin::nn {
namespace {

TEST(CrossEntropy, PerfectPredictionHasLowLoss) {
  Tensor logits({1, 3}, std::vector<float>{10.0f, -10.0f, -10.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.value, 1e-3f);
}

TEST(CrossEntropy, GradientIsProbsMinusOneHot) {
  Tensor logits({1, 2}, std::vector<float>{0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(r.grad.at(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(r.grad.at(0, 1), -0.5f, 1e-5f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  std::mt19937_64 engine(1);
  Tensor logits = Tensor::randn({4, 5}, 1.0f, engine);
  const std::vector<std::size_t> labels = {0, 2, 4, 1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); i += 3) {
    Tensor up = logits;
    up[i] += eps;
    Tensor down = logits;
    down[i] -= eps;
    const float numeric = (softmax_cross_entropy(up, labels).value -
                           softmax_cross_entropy(down, labels).value) /
                          (2.0f * eps);
    EXPECT_NEAR(r.grad[i], numeric, 2e-3f);
  }
}

TEST(CrossEntropy, LabelSmoothingKeepsLogitsInformative) {
  // With smoothing, even a perfect prediction keeps a positive loss floor
  // (cross-entropy against the smoothed target), discouraging logit
  // explosions.
  Tensor confident({1, 4}, std::vector<float>{50.0f, -50.0f, -50.0f, -50.0f});
  const LossResult hard = softmax_cross_entropy(confident, {0}, 0.0f);
  const LossResult smooth = softmax_cross_entropy(confident, {0}, 0.1f);
  EXPECT_LT(hard.value, 1e-3f);
  EXPECT_GT(smooth.value, 1.0f);
  // And the gradient pushes the winning logit DOWN under smoothing.
  EXPECT_GT(smooth.grad.at(0, 0), 0.0f);
}

TEST(CrossEntropy, RejectsBadInputs) {
  Tensor logits({2, 3});
  EXPECT_THROW((void)softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW((void)softmax_cross_entropy(logits, {0, 5}), std::out_of_range);
  EXPECT_THROW((void)softmax_cross_entropy(logits, {0, 1}, 1.0f),
               std::invalid_argument);
}

TEST(Mse, ValueAndGradient) {
  Tensor pred({2, 1}, std::vector<float>{1.0f, 3.0f});
  Tensor target({2, 1}, std::vector<float>{0.0f, 3.0f});
  const LossResult r = mean_squared_error(pred, target);
  EXPECT_NEAR(r.value, 0.5f, 1e-6f);
  EXPECT_NEAR(r.grad[0], 1.0f, 1e-6f);
  EXPECT_NEAR(r.grad[1], 0.0f, 1e-6f);
}

TEST(Softplus, MatchesReference) {
  EXPECT_NEAR(softplus(0.0f), std::log(2.0f), 1e-6f);
  EXPECT_NEAR(softplus(30.0f), 30.0f, 1e-4f);
  EXPECT_NEAR(softplus_grad(0.0f), 0.5f, 1e-6f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor w({2}, std::vector<float>{5.0f, -3.0f});
  Tensor g({2});
  Sgd opt({{&w, &g}}, 0.1f, 0.0f);
  for (int step = 0; step < 200; ++step) {
    g[0] = 2.0f * w[0];
    g[1] = 2.0f * w[1];
    opt.step();
  }
  EXPECT_NEAR(w[0], 0.0f, 1e-3f);
  EXPECT_NEAR(w[1], 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Tensor w({1}, std::vector<float>{10.0f});
    Tensor g({1});
    Sgd opt({{&w, &g}}, 0.01f, momentum);
    for (int step = 0; step < 50; ++step) {
      g[0] = 2.0f * w[0];
      opt.step();
    }
    return std::abs(w[0]);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Adam, ConvergesOnIllConditionedQuadratic) {
  Tensor w({2}, std::vector<float>{5.0f, 5.0f});
  Tensor g({2});
  Adam opt({{&w, &g}}, 0.1f);
  for (int step = 0; step < 500; ++step) {
    g[0] = 2.0f * 100.0f * w[0];  // stiff axis
    g[1] = 2.0f * 0.01f * w[1];   // shallow axis
    opt.step();
  }
  EXPECT_NEAR(w[0], 0.0f, 1e-2f);
  EXPECT_LT(std::abs(w[1]), 5.0f) << "Adam must make progress on the shallow axis";
}

TEST(Optimizer, StepClearsGradients) {
  Tensor w({2}, std::vector<float>{1.0f, 1.0f});
  Tensor g({2}, std::vector<float>{1.0f, 1.0f});
  Sgd opt({{&w, &g}}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

TEST(Optimizer, CountsParameters) {
  Tensor a({3, 4});
  Tensor ga({3, 4});
  Tensor b({5});
  Tensor gb({5});
  Sgd opt({{&a, &ga}, {&b, &gb}}, 0.1f);
  EXPECT_EQ(opt.parameter_count(), 17u);
}

TEST(Optimizer, RejectsMalformedRefs) {
  Tensor w({2});
  Tensor g({3});
  EXPECT_THROW(Sgd({{&w, &g}}, 0.1f), std::invalid_argument);
  EXPECT_THROW(Sgd({{nullptr, nullptr}}, 0.1f), std::invalid_argument);
}

TEST(StepDecay, HalvesOnSchedule) {
  StepDecay schedule(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(schedule.lr_for_epoch(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.lr_for_epoch(9), 1.0f);
  EXPECT_FLOAT_EQ(schedule.lr_for_epoch(10), 0.5f);
  EXPECT_FLOAT_EQ(schedule.lr_for_epoch(25), 0.25f);
}

}  // namespace
}  // namespace neuspin::nn
