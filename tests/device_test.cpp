// Unit tests for the spintronic device substrate.
#include <gtest/gtest.h>

#include "device/defects.h"
#include "device/mtj.h"
#include "device/multilevel.h"
#include "device/rng.h"
#include "device/sot_cell.h"
#include "device/switching.h"
#include "device/variability.h"

namespace neuspin::device {
namespace {

// ------------------------------------------------------------------ MTJ ----

TEST(Mtj, ResistanceFollowsState) {
  Mtj mtj;
  mtj.set_state(MtjState::kParallel);
  const KiloOhm r_p = mtj.resistance();
  mtj.set_state(MtjState::kAntiParallel);
  const KiloOhm r_ap = mtj.resistance();
  EXPECT_GT(r_ap, r_p) << "AP state must be the high-resistance state";
  EXPECT_NEAR(r_ap / r_p, 1.0 + mtj.params().tmr, 1e-9);
}

TEST(Mtj, ConductanceIsInverseResistance) {
  Mtj mtj;
  EXPECT_NEAR(mtj.conductance(), 1000.0 / mtj.resistance(), 1e-9);
}

TEST(Mtj, ResistanceVariationPreservesTmr) {
  Mtj mtj;
  const double tmr_before = mtj.r_antiparallel() / mtj.r_parallel();
  mtj.apply_resistance_variation(1.2);
  EXPECT_NEAR(mtj.r_antiparallel() / mtj.r_parallel(), tmr_before, 1e-9);
}

TEST(Mtj, RejectsInvalidParams) {
  MtjParams bad;
  bad.r_parallel = -1.0;
  EXPECT_THROW(Mtj{bad}, std::invalid_argument);
  bad = MtjParams{};
  bad.tmr = 0.0;
  EXPECT_THROW(Mtj{bad}, std::invalid_argument);
  bad = MtjParams{};
  bad.delta = -5.0;
  EXPECT_THROW(Mtj{bad}, std::invalid_argument);
  bad = MtjParams{};
  bad.i_c0 = 0.0;
  EXPECT_THROW(Mtj{bad}, std::invalid_argument);
}

TEST(Mtj, RejectsNonPositiveVariationFactor) {
  Mtj mtj;
  EXPECT_THROW(mtj.apply_resistance_variation(0.0), std::invalid_argument);
  EXPECT_THROW(mtj.set_delta(-1.0), std::invalid_argument);
}

TEST(Mtj, ReadEnergyScalesWithPulseWidth) {
  Mtj mtj;
  EXPECT_NEAR(mtj.read_energy(2.0), 2.0 * mtj.read_energy(1.0), 1e-12);
  EXPECT_GT(mtj.read_energy(1.0), 0.0);
}

TEST(Mtj, WriteEnergyQuadraticInCurrent) {
  Mtj mtj;
  EXPECT_NEAR(mtj.write_energy(80.0, 1.0), 4.0 * mtj.write_energy(40.0, 1.0), 1e-12);
}

// ------------------------------------------------------------ Switching ----

TEST(Switching, ProbabilityMonotoneInCurrent) {
  SwitchingModel model{MtjParams{}};
  double prev = 0.0;
  for (MicroAmp i = 5.0; i <= 100.0; i += 5.0) {
    const double p = model.switching_probability(i, 5.0);
    EXPECT_GE(p, prev) << "switching probability must grow with current";
    prev = p;
  }
}

TEST(Switching, ProbabilityMonotoneInPulseWidth) {
  SwitchingModel model{MtjParams{}};
  double prev = 0.0;
  for (Nanosecond t = 0.5; t <= 50.0; t *= 2.0) {
    const double p = model.switching_probability(30.0, t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Switching, ZeroCurrentNeverSwitches) {
  SwitchingModel model{MtjParams{}};
  EXPECT_DOUBLE_EQ(model.switching_probability(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(model.switching_probability(-5.0, 100.0), 0.0);
}

TEST(Switching, LargeOverdriveSwitchesAlmostSurely) {
  SwitchingModel model{MtjParams{}};
  EXPECT_GT(model.switching_probability(400.0, 5.0), 0.999);
}

TEST(Switching, InverseRecoversProbability) {
  SwitchingModel model{MtjParams{}};
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const MicroAmp i = model.current_for_probability(p, 2.0);
    EXPECT_NEAR(model.switching_probability(i, 2.0), p, 1e-6)
        << "current_for_probability must invert switching_probability at p=" << p;
  }
}

TEST(Switching, InverseRejectsDegenerateProbabilities) {
  SwitchingModel model{MtjParams{}};
  EXPECT_THROW((void)model.current_for_probability(0.0, 1.0), std::domain_error);
  EXPECT_THROW((void)model.current_for_probability(1.0, 1.0), std::domain_error);
}

TEST(Switching, LowerDeltaSwitchesMoreEasily) {
  SwitchingModel model{MtjParams{}};
  const double p_nominal = model.switching_probability(30.0, 2.0, 45.0);
  const double p_weak = model.switching_probability(30.0, 2.0, 35.0);
  EXPECT_GT(p_weak, p_nominal)
      << "a thermally weaker device must switch with higher probability";
}

TEST(Switching, MeanSwitchingTimeDropsWithOverdrive) {
  SwitchingModel model{MtjParams{}};
  EXPECT_GT(model.mean_switching_time(20.0), model.mean_switching_time(39.0));
  EXPECT_GT(model.mean_switching_time(45.0), model.mean_switching_time(80.0));
}

// ----------------------------------------------------------- Variability ----

TEST(Variability, ZeroSigmaIsIdentity) {
  VariabilityParams params;
  params.resistance_sigma = 0.0;
  params.read_noise_sigma = 0.0;
  VariabilityModel model(params, 1);
  EXPECT_DOUBLE_EQ(model.sample_resistance_factor(), 1.0);
  EXPECT_DOUBLE_EQ(model.sample_read_noise(), 1.0);
}

TEST(Variability, ResistanceFactorIsLogNormal) {
  VariabilityParams params;
  params.resistance_sigma = 0.1;
  VariabilityModel model(params, 7);
  double log_sum = 0.0;
  double log_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double f = model.sample_resistance_factor();
    ASSERT_GT(f, 0.0);
    const double lf = std::log(f);
    log_sum += lf;
    log_sq += lf * lf;
  }
  const double mean = log_sum / n;
  const double var = log_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.01);
}

TEST(Variability, DeltaStaysPhysical) {
  VariabilityParams params;
  params.delta_sigma = 30.0;  // absurdly wide to force clamping
  VariabilityModel model(params, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.sample_delta(45.0), 1.0);
  }
}

TEST(Variability, SameSeedReproduces) {
  VariabilityParams params;
  VariabilityModel a(params, 42);
  VariabilityModel b(params, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_resistance_factor(), b.sample_resistance_factor());
  }
}

TEST(Variability, RejectsNegativeSigma) {
  VariabilityParams params;
  params.resistance_sigma = -0.1;
  EXPECT_THROW(VariabilityModel(params, 1), std::invalid_argument);
}

// -------------------------------------------------------------- Defects ----

TEST(Defects, CleanMapHasNoDefects) {
  DefectMap map(64, 64);
  EXPECT_EQ(map.defect_count(), 0u);
}

TEST(Defects, RatesProduceExpectedCounts) {
  DefectRates rates;
  rates.stuck_at_p = 0.02;
  rates.stuck_at_ap = 0.02;
  rates.open = 0.01;
  rates.short_circuit = 0.01;
  DefectMap map(200, 200, rates, 11);
  const double expected = 0.06 * 200 * 200;
  EXPECT_NEAR(static_cast<double>(map.defect_count()), expected, expected * 0.2);
}

TEST(Defects, EffectiveConductanceRules) {
  DefectMap map(2, 2);
  map.set(0, 0, DefectKind::kStuckAtParallel);
  map.set(0, 1, DefectKind::kStuckAtAntiParallel);
  map.set(1, 0, DefectKind::kOpen);
  map.set(1, 1, DefectKind::kShort);
  const MicroSiemens healthy = 100.0;
  const MicroSiemens g_p = 166.0;
  const MicroSiemens g_ap = 66.0;
  const MicroSiemens g_short = 2000.0;
  EXPECT_DOUBLE_EQ(map.effective_conductance(0, 0, healthy, g_p, g_ap, g_short), g_p);
  EXPECT_DOUBLE_EQ(map.effective_conductance(0, 1, healthy, g_p, g_ap, g_short), g_ap);
  EXPECT_DOUBLE_EQ(map.effective_conductance(1, 0, healthy, g_p, g_ap, g_short), 0.0);
  EXPECT_DOUBLE_EQ(map.effective_conductance(1, 1, healthy, g_p, g_ap, g_short), g_short);
}

TEST(Defects, RejectsOverUnityRates) {
  DefectRates rates;
  rates.stuck_at_p = 0.6;
  rates.stuck_at_ap = 0.6;
  EXPECT_THROW(rates.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ MultiLevel ----

TEST(MultiLevel, UniformLevelCount) {
  MultiLevelCell cell(MtjParams{}, 4, MultiLevelSizing::kUniform);
  EXPECT_EQ(cell.level_count(), 5u);
}

TEST(MultiLevel, BinaryWeightedLevelCount) {
  MultiLevelCell cell(MtjParams{}, 3, MultiLevelSizing::kBinaryWeighted);
  EXPECT_EQ(cell.level_count(), 8u);
}

TEST(MultiLevel, ConductanceMonotoneInLevel) {
  for (auto sizing : {MultiLevelSizing::kUniform, MultiLevelSizing::kBinaryWeighted}) {
    MultiLevelCell cell(MtjParams{}, 3, sizing);
    double prev = -1.0;
    for (std::size_t level = 0; level < cell.level_count(); ++level) {
      const double g = cell.conductance_at(level);
      EXPECT_GT(g, prev) << "conductance must grow with level";
      prev = g;
    }
  }
}

TEST(MultiLevel, ProgramSetsLevel) {
  MultiLevelCell cell(MtjParams{}, 4, MultiLevelSizing::kUniform);
  cell.program(3);
  EXPECT_EQ(cell.level(), 3u);
  EXPECT_DOUBLE_EQ(cell.conductance(), cell.conductance_at(3));
}

TEST(MultiLevel, ProgramOutOfRangeThrows) {
  MultiLevelCell cell(MtjParams{}, 4, MultiLevelSizing::kUniform);
  EXPECT_THROW(cell.program(5), std::out_of_range);
}

TEST(MultiLevel, PulseCountIsHammingDistance) {
  MultiLevelCell cell(MtjParams{}, 3, MultiLevelSizing::kBinaryWeighted);
  cell.program(0b000);
  EXPECT_EQ(cell.pulses_to_program(0b111), 3u);
  EXPECT_EQ(cell.pulses_to_program(0b101), 2u);
  EXPECT_EQ(cell.pulses_to_program(0b000), 0u);
}

TEST(MultiLevel, LevelStepPositive) {
  MultiLevelCell cell(MtjParams{}, 4, MultiLevelSizing::kUniform);
  EXPECT_GT(cell.level_step(), 0.0);
}

// ------------------------------------------------------------------ RNG ----

class SpinRngProbability : public ::testing::TestWithParam<double> {};

TEST_P(SpinRngProbability, RealizesTargetProbability) {
  SpinRngConfig config;
  config.target_probability = GetParam();
  SpinRng rng(config, 123);
  EXPECT_NEAR(rng.realized_probability(), GetParam(), 1e-6)
      << "nominal device must realize the calibrated probability";
  const auto bits = rng.bitstream(20000);
  const auto stats = analyze_bitstream(bits);
  EXPECT_NEAR(stats.mean, GetParam(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(TargetSweep, SpinRngProbability,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9));

TEST(SpinRng, VariationShiftsRealizedProbability) {
  SpinRngConfig config;
  config.target_probability = 0.5;
  SpinRng nominal(config, 1);
  config.delta_override = config.mtj.delta - 8.0;  // thermally weaker device
  SpinRng weak(config, 1);
  EXPECT_GT(weak.realized_probability(), nominal.realized_probability())
      << "a weaker device switches more often at the same bias";
}

TEST(SpinRng, BitstreamUncorrelated) {
  SpinRngConfig config;
  SpinRng rng(config, 2024);
  const auto stats = analyze_bitstream(rng.bitstream(20000));
  EXPECT_LT(std::abs(stats.lag1_autocorr), 0.03)
      << "SET/read/RESET cycles must be independent";
}

TEST(SpinRng, EnergyAndLatencyPositive) {
  SpinRng rng(SpinRngConfig{}, 5);
  EXPECT_GT(rng.energy_per_bit(), 0.0);
  EXPECT_DOUBLE_EQ(rng.latency_per_bit(),
                   SpinRngConfig{}.set_pulse + SpinRngConfig{}.read_pulse +
                       SpinRngConfig{}.reset_pulse);
}

TEST(SpinRng, CountsGeneratedBits) {
  SpinRng rng(SpinRngConfig{}, 5);
  (void)rng.bitstream(100);
  EXPECT_EQ(rng.bits_generated(), 100u);
}

TEST(SpinRng, RejectsInvalidConfig) {
  SpinRngConfig config;
  config.target_probability = 1.5;
  EXPECT_THROW(SpinRng(config, 1), std::invalid_argument);
  config = SpinRngConfig{};
  config.reset_current = 10.0;  // below critical: reset not deterministic
  EXPECT_THROW(SpinRng(config, 1), std::invalid_argument);
}

TEST(BitstreamStats, KnownSequence) {
  const std::vector<bool> bits = {true, true, true, false, false, true, false, false};
  const auto stats = analyze_bitstream(bits);
  EXPECT_FLOAT_EQ(static_cast<float>(stats.mean), 0.5f);
  EXPECT_EQ(stats.longest_run, 3u);
}

// -------------------------------------------------------------- SotCell ----

TEST(SotCell, WriteSwitchesStateWithoutReadDisturb) {
  SotCell cell{SotCellParams{}};
  cell.write(MtjState::kAntiParallel);
  EXPECT_EQ(cell.state(), MtjState::kAntiParallel);
  const MicroSiemens g1 = cell.read_conductance();
  const MicroSiemens g2 = cell.read_conductance();
  EXPECT_DOUBLE_EQ(g1, g2) << "SOT reads must not disturb the state";
}

TEST(SotCell, WriteEnergyIndependentOfJunctionResistance) {
  SotCellParams params;
  SotCell cell_a(params);
  params.mtj.r_parallel = 60.0;  // 10x junction resistance
  SotCell cell_b(params);
  EXPECT_DOUBLE_EQ(cell_a.write_energy(), cell_b.write_energy())
      << "SOT write path goes through the heavy metal, not the junction";
}

TEST(SotCell, ReadEnergyDropsWithHigherJunctionResistance) {
  SotCellParams params;
  SotCell low_r(params);
  params.mtj.r_parallel = 600.0;  // MOhm-class junction
  SotCell high_r(params);
  EXPECT_LT(high_r.read_energy(1.0), low_r.read_energy(1.0));
}

}  // namespace
}  // namespace neuspin::device
