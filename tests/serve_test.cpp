// Serving runtime: the request path must be a pure function of
// (model, features, mc_samples, request seed) — worker count, batch
// composition and linger tuning may change only *when* a prediction
// arrives, never what it says. Plus: the i-th auto-seeded request must
// reproduce the offline core::evaluate path at batch_size 1 bit for bit,
// abstention policies must threshold correctly, and shutdown must drain
// every request exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bayesian.h"
#include "core/hw_model.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/strokes.h"
#include "obs/export.h"
#include "serve/batcher.h"
#include "serve/policy.h"
#include "serve/runtime.h"

namespace {

using namespace neuspin;
using namespace std::chrono_literals;

nn::Dataset tiny_dataset(std::uint64_t seed, std::size_t per_class = 2) {
  data::StrokeConfig sc;
  sc.samples_per_class = per_class;
  return data::standardize_per_sample(data::make_stroke_digits_flat(sc, seed));
}

core::BuiltModel tiny_model(core::Method method = core::Method::kSpinDrop) {
  core::ModelConfig mc;
  mc.method = method;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  return core::make_binary_mlp(mc, 256, {32, 16}, 10);
}

std::vector<float> sample_row(const nn::Dataset& data, std::size_t i) {
  const nn::Tensor x = data.batch(i, i + 1).first;
  return std::vector<float>(x.data().begin(), x.data().end());
}

// ---------------------------------------------------------------- policy

TEST(SelectivePolicy, AcceptAllNeverAbstains) {
  const serve::SelectivePolicy policy(serve::PolicyConfig{});
  EXPECT_TRUE(policy.decide(0.05f, 5.0f, 3.0f).accepted);
}

TEST(SelectivePolicy, EntropyCeilingThresholds) {
  serve::PolicyConfig config;
  config.kind = serve::PolicyKind::kMaxEntropy;
  config.threshold = 1.0f;
  const serve::SelectivePolicy policy(config);
  EXPECT_TRUE(policy.decide(0.9f, 0.99f, 0.1f).accepted);
  EXPECT_FALSE(policy.decide(0.9f, 1.01f, 0.1f).accepted);
  EXPECT_EQ(policy.decide(0.9f, 0.5f, 0.1f).score, 0.5f);
}

TEST(SelectivePolicy, MutualInfoCeilingThresholds) {
  serve::PolicyConfig config;
  config.kind = serve::PolicyKind::kMaxMutualInfo;
  config.threshold = 0.2f;
  const serve::SelectivePolicy policy(config);
  EXPECT_TRUE(policy.decide(0.9f, 2.0f, 0.19f).accepted);
  EXPECT_FALSE(policy.decide(0.9f, 0.1f, 0.21f).accepted);
}

TEST(SelectivePolicy, ConfidenceFloorThresholds) {
  serve::PolicyConfig config;
  config.kind = serve::PolicyKind::kMinConfidence;
  config.threshold = 0.7f;
  const serve::SelectivePolicy policy(config);
  EXPECT_TRUE(policy.decide(0.71f, 0.0f, 0.0f).accepted);
  EXPECT_FALSE(policy.decide(0.69f, 0.0f, 0.0f).accepted);
}

TEST(SelectivePolicy, RejectsInvalidThresholds) {
  serve::PolicyConfig entropy;
  entropy.kind = serve::PolicyKind::kMaxEntropy;
  entropy.threshold = -0.1f;
  EXPECT_THROW(serve::SelectivePolicy{entropy}, std::invalid_argument);
  serve::PolicyConfig confidence;
  confidence.kind = serve::PolicyKind::kMinConfidence;
  confidence.threshold = 1.5f;
  EXPECT_THROW(serve::SelectivePolicy{confidence}, std::invalid_argument);
}

// --------------------------------------------------------------- batcher

serve::Request make_request(std::uint64_t id) {
  serve::Request r;
  r.id = id;
  r.enqueued = std::chrono::steady_clock::now();
  return r;
}

TEST(Batcher, FlushesFullBatchesInFifoOrder) {
  serve::BatcherConfig config;
  config.max_batch = 4;
  config.max_linger = 1h;  // only full batches flush in this test
  serve::Batcher batcher(config);
  for (std::uint64_t i = 0; i < 8; ++i) {
    batcher.push(make_request(i));
  }
  const auto first = batcher.pop_batch();
  const auto second = batcher.pop_batch();
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(second.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first[i].id, i);
    EXPECT_EQ(second[i].id, i + 4);
  }
}

TEST(Batcher, LingerFlushesPartialBatch) {
  serve::BatcherConfig config;
  config.max_batch = 64;
  config.max_linger = 2ms;
  serve::Batcher batcher(config);
  for (std::uint64_t i = 0; i < 3; ++i) {
    batcher.push(make_request(i));
  }
  const auto batch = batcher.pop_batch();  // blocks at most ~2ms
  EXPECT_EQ(batch.size(), 3u);
}

TEST(Batcher, BacklogIsSplitAcrossConsumers) {
  serve::BatcherConfig config;
  config.max_batch = 8;
  config.max_linger = 1h;
  config.consumers = 4;
  serve::Batcher batcher(config);
  for (std::uint64_t i = 0; i < 8; ++i) {
    batcher.push(make_request(i));
  }
  // Fair share is ceil(pending / consumers), not max_batch: 8 pending
  // across 4 consumers pops 2 at a time so idle workers get their cut.
  EXPECT_EQ(batcher.pop_batch().size(), 2u);
  EXPECT_EQ(batcher.pop_batch().size(), 2u);
  EXPECT_EQ(batcher.pop_batch().size(), 2u);
  EXPECT_EQ(batcher.pop_batch().size(), 2u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(Batcher, CloseDrainsRemainingThenSignalsExit) {
  serve::BatcherConfig config;
  config.max_batch = 2;
  config.max_linger = 1h;
  serve::Batcher batcher(config);
  for (std::uint64_t i = 0; i < 5; ++i) {
    batcher.push(make_request(i));
  }
  batcher.close();
  EXPECT_EQ(batcher.pop_batch().size(), 2u);
  EXPECT_EQ(batcher.pop_batch().size(), 2u);
  EXPECT_EQ(batcher.pop_batch().size(), 1u);
  EXPECT_TRUE(batcher.pop_batch().empty());
  // A rejected push fails the request's promise too, so a future already
  // handed to a client resolves with the error instead of broken_promise.
  serve::Request rejected = make_request(9);
  auto future = rejected.promise.get_future();
  EXPECT_THROW(batcher.push(std::move(rejected)), std::runtime_error);
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

// --------------------------------------------------------------- runtime

std::vector<serve::ServedPrediction> serve_all(serve::Runtime& runtime,
                                               const nn::Dataset& data,
                                               std::size_t count) {
  std::vector<std::future<serve::ServedPrediction>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i)));
  }
  std::vector<serve::ServedPrediction> out;
  out.reserve(count);
  for (auto& f : futures) {
    out.push_back(f.get());
  }
  return out;
}

// The acceptance contract: request i served online must equal sample i of
// the offline core::evaluate path at batch_size 1, bit for bit.
TEST(Runtime, MatchesOfflineEvaluatePathBitwise) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(21);
  constexpr std::size_t kRequests = 12;
  constexpr std::size_t kMcSamples = 6;
  constexpr std::uint64_t kSeed = 555;

  serve::RuntimeConfig config;
  config.workers = 3;
  config.mc_samples = kMcSamples;
  config.seed = kSeed;
  config.batcher.max_batch = 4;
  config.batcher.max_linger = 200us;
  serve::Runtime runtime(model, config);
  const auto served = serve_all(runtime, data, kRequests);

  // Offline reference 1: the real evaluate-path entry point.
  core::EvalOptions offline;
  offline.mc_samples = kMcSamples;
  offline.batch_size = 1;
  offline.threads = 1;
  offline.seed = kSeed;
  const std::vector<float> offline_entropy =
      core::entropy_scores(model, data, offline);

  // Offline reference 2: the raw Monte-Carlo loop, for the probabilities.
  core::BuiltModel reference = model.clone();
  reference.enable_mc(true);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const core::McPredictor predictor(
        kMcSamples, serve::Runtime::request_stream_seed(kSeed, i));
    const core::Prediction expected = predictor.predict(
        data.batch(i, i + 1).first,
        core::McPredictor::SeededForward(
            [&reference](const nn::Tensor& x, std::uint64_t pass_seed) {
              reference.reseed_stochastic(pass_seed);
              return reference.stochastic_logits(x);
            }));
    ASSERT_EQ(served[i].request_id, i);
    ASSERT_EQ(served[i].probs.size(), expected.mean_probs.numel());
    for (std::size_t c = 0; c < served[i].probs.size(); ++c) {
      ASSERT_EQ(served[i].probs[c], expected.mean_probs[c])
          << "request " << i << " class " << c;
    }
    ASSERT_EQ(served[i].entropy, expected.entropy.front()) << "request " << i;
    ASSERT_EQ(served[i].entropy, offline_entropy[i]) << "request " << i;
    ASSERT_EQ(served[i].mutual_info, expected.mutual_info.front());
    ASSERT_EQ(served[i].mc_samples, kMcSamples);
  }
}

TEST(Runtime, InvariantToWorkerCountAndBatching) {
  const core::BuiltModel model = tiny_model(core::Method::kSpinScaleDrop);
  const nn::Dataset data = tiny_dataset(22);
  constexpr std::size_t kRequests = 16;

  serve::RuntimeConfig serial;
  serial.workers = 1;
  serial.mc_samples = 5;
  serial.seed = 99;
  serial.batcher.max_batch = 1;
  serial.batcher.max_linger = 0us;

  serve::RuntimeConfig pooled = serial;
  pooled.workers = 4;
  pooled.batcher.max_batch = 8;
  pooled.batcher.max_linger = 2ms;

  serve::Runtime a(model, serial);
  serve::Runtime b(model, pooled);
  const auto served_a = serve_all(a, data, kRequests);
  const auto served_b = serve_all(b, data, kRequests);

  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_EQ(served_a[i].probs, served_b[i].probs) << "request " << i;
    EXPECT_EQ(served_a[i].entropy, served_b[i].entropy);
    EXPECT_EQ(served_a[i].mutual_info, served_b[i].mutual_info);
    EXPECT_EQ(served_a[i].predicted_class, served_b[i].predicted_class);
    EXPECT_EQ(served_a[i].accepted, served_b[i].accepted);
  }
}

// The same requests through deliberately different batch compositions
// (singletons, odd-sized partial batches, one big stack) and with the
// fused path disabled: every configuration must serve bitwise identical
// predictions.
TEST(Runtime, InvariantToMixedBatchCompositionAndFusion) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(28);
  constexpr std::size_t kRequests = 15;

  serve::RuntimeConfig base;
  base.workers = 1;
  base.mc_samples = 4;
  base.seed = 4242;

  std::vector<serve::RuntimeConfig> configs;
  {
    serve::RuntimeConfig c = base;  // degenerate: one request per batch
    c.batcher.max_batch = 1;
    c.batcher.max_linger = 0us;
    configs.push_back(c);
  }
  {
    serve::RuntimeConfig c = base;  // odd partial batches: 15 = 4x3 + 3
    c.batcher.max_batch = 4;
    c.batcher.max_linger = 1ms;
    c.workers = 2;
    configs.push_back(c);
  }
  {
    serve::RuntimeConfig c = base;  // one big stack
    c.batcher.max_batch = 32;
    c.batcher.max_linger = 5ms;
    configs.push_back(c);
  }
  {
    serve::RuntimeConfig c = base;  // per-request loop (fusion off)
    c.fused_batching = false;
    c.batcher.max_batch = 8;
    c.batcher.max_linger = 1ms;
    configs.push_back(c);
  }

  std::vector<std::vector<serve::ServedPrediction>> runs;
  for (const auto& config : configs) {
    serve::Runtime runtime(model, config);
    runs.push_back(serve_all(runtime, data, kRequests));
  }
  for (std::size_t v = 1; v < runs.size(); ++v) {
    for (std::size_t i = 0; i < kRequests; ++i) {
      ASSERT_EQ(runs[v][i].probs, runs[0][i].probs)
          << "variant " << v << " request " << i;
      ASSERT_EQ(runs[v][i].entropy, runs[0][i].entropy);
      ASSERT_EQ(runs[v][i].mutual_info, runs[0][i].mutual_info);
    }
  }
}

// A malformed submission sharing a fused batch with well-formed requests
// must fail alone: its group throws, the companions' group computes.
TEST(Runtime, MalformedRequestFailsWithoutPoisoningItsBatch) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(29);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  config.batcher.max_batch = 4;
  config.batcher.max_linger = 50ms;  // hold the batch open until all arrive

  serve::Runtime runtime(model, config);
  auto good0 = runtime.submit(sample_row(data, 0));
  auto bad = runtime.submit(std::vector<float>(7, 0.5f));  // wrong width
  auto good1 = runtime.submit(sample_row(data, 1));
  auto good2 = runtime.submit(sample_row(data, 2));

  EXPECT_THROW((void)bad.get(), std::invalid_argument);
  EXPECT_EQ(good0.get().probs.size(), 10u);
  EXPECT_EQ(good1.get().probs.size(), 10u);
  EXPECT_EQ(good2.get().probs.size(), 10u);
}

// ------------------------------------------------------- observability

TEST(Runtime, AdmissionControlShedsAboveQueueBound) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(30);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  config.max_queue_depth = 2;
  // A huge linger keeps queued requests pending so submissions pile up
  // behind the bound deterministically.
  config.batcher.max_batch = 64;
  config.batcher.max_linger = 10s;

  serve::Runtime runtime(model, config);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i)));
  }
  // The first max_queue_depth submissions queue; everything beyond them is
  // shed with an immediate error (workers are parked on the linger).
  // Shutdown drains the queued ones so the harvest below cannot block on
  // the 10s linger.
  runtime.shutdown();
  std::size_t shed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::runtime_error&) {
      ++shed;
    }
  }
  EXPECT_GE(shed, 4u);
  EXPECT_EQ(runtime.stats().shed, shed);
}

TEST(Runtime, ShedResponsesCarryReasonAndRetryHint) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(36);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  config.max_queue_depth = 1;
  config.batcher.max_batch = 64;
  config.batcher.max_linger = 10s;  // park the worker so the queue fills

  serve::Runtime runtime(model, config);
  std::vector<std::future<serve::ServedPrediction>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i)));
  }
  runtime.shutdown();

  std::size_t queue_full = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const serve::OverloadError& e) {
      EXPECT_EQ(e.reason(), serve::ShedReason::kQueueFull);
      // Even before any completion the hint is floored at
      // max(max_linger, 100us) — a client must never busy-retry.
      EXPECT_GE(e.retry_after_us(), 100.0);
      EXPECT_GE(e.queue_depth(), config.max_queue_depth);
      ++queue_full;
    }
  }
  EXPECT_GE(queue_full, 2u);

  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.shed_queue_full, queue_full);
  EXPECT_EQ(stats.shed, stats.shed_queue_full + stats.shed_shutdown);

  // Post-shutdown submissions are typed sheds too (reason: shutdown, no
  // retry hint — retrying is pointless) and are counted separately.
  try {
    (void)runtime.submit(sample_row(data, 0));
    FAIL() << "submit after shutdown must throw";
  } catch (const serve::OverloadError& e) {
    EXPECT_EQ(e.reason(), serve::ShedReason::kShutdown);
    EXPECT_EQ(e.retry_after_us(), 0.0);
  }
  EXPECT_EQ(runtime.stats().shed_shutdown, 1u);
  EXPECT_EQ(runtime.stats().shed, queue_full + 1);
}

TEST(Runtime, FusedWorkerCountNeverChangesPredictions) {
  // The pool-parallel fused path must be invisible: any fused_workers
  // value serves bitwise-identical predictions for the same request seed.
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(37);
  std::vector<std::vector<float>> baseline;
  for (const std::size_t fused_workers : {1, 3}) {
    serve::RuntimeConfig config;
    config.workers = 1;
    config.mc_samples = 4;
    config.fused_workers = fused_workers;
    config.batcher.max_batch = 8;
    config.batcher.max_linger = 20ms;  // coalesce into real batches
    serve::Runtime runtime(model, config);
    std::vector<std::future<serve::ServedPrediction>> futures;
    for (std::size_t i = 0; i < 12; ++i) {
      futures.push_back(
          runtime.submit(sample_row(data, i), nn::mix_seed(0xf00d, i)));
    }
    std::vector<std::vector<float>> probs;
    for (auto& f : futures) {
      probs.push_back(f.get().probs);
    }
    if (baseline.empty()) {
      baseline = std::move(probs);
      continue;
    }
    ASSERT_EQ(baseline.size(), probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      ASSERT_EQ(baseline[i].size(), probs[i].size());
      for (std::size_t j = 0; j < probs[i].size(); ++j) {
        ASSERT_EQ(baseline[i][j], probs[i][j])
            << "request " << i << " class " << j << " fused_workers "
            << fused_workers;
      }
    }
  }
}

TEST(Runtime, RollingLatencyWindowReportsPercentiles) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(31);
  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 2;
  config.latency_window = 8;  // smaller than the request count: must roll
  serve::Runtime runtime(model, config);
  const auto served = serve_all(runtime, data, 12);

  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_GT(stats.window_p50_us, 0.0);
  EXPECT_GE(stats.window_p99_us, stats.window_p50_us);
  // The window only ever holds latencies that were actually observed.
  double max_seen = 0.0;
  for (const auto& p : served) {
    max_seen = std::max(max_seen, p.total_latency_us);
  }
  EXPECT_LE(stats.window_p99_us, max_seen);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(Runtime, ShutdownDrainsEveryRequestExactlyOnce) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(23, 7);  // 70 samples
  constexpr std::size_t kRequests = 64;

  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 2;
  config.batcher.max_batch = 8;
  config.batcher.max_linger = 50us;
  serve::Runtime runtime(model, config);

  std::vector<std::future<serve::ServedPrediction>> futures;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.submit(sample_row(data, i)));
  }
  runtime.shutdown();  // must serve everything queued before joining

  std::set<std::uint64_t> ids;
  for (auto& f : futures) {
    const serve::ServedPrediction p = f.get();  // throws if any was dropped
    ids.insert(p.request_id);
  }
  EXPECT_EQ(ids.size(), kRequests);
  EXPECT_EQ(runtime.stats().requests, kRequests);
  EXPECT_THROW((void)runtime.submit(sample_row(data, 0)), std::runtime_error);
}

TEST(Runtime, BehavioralEnergyIsCensusPricedAndConstantPerRequest) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(24);
  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 3;
  serve::Runtime runtime(model, config);
  const auto served = serve_all(runtime, data, 4);
  ASSERT_GT(served.front().energy_pj, 0.0);
  for (const auto& p : served) {
    EXPECT_EQ(p.energy_pj, served.front().energy_pj);
  }
  const serve::RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_DOUBLE_EQ(stats.total_energy_pj, 4.0 * served.front().energy_pj);
}

TEST(Runtime, AbstentionPolicyMarksRequests) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(25);
  // An impossible confidence floor of 1.0 forces abstention on every
  // (untrained, near-uniform) prediction.
  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 2;
  config.policy.kind = serve::PolicyKind::kMinConfidence;
  config.policy.threshold = 1.0f;
  serve::Runtime runtime(model, config);
  const auto served = serve_all(runtime, data, 6);
  for (const auto& p : served) {
    EXPECT_FALSE(p.accepted);
    EXPECT_EQ(p.policy_score, p.confidence);
  }
  EXPECT_EQ(runtime.stats().abstained, 6u);
}

// ------------------------------------------------------ tiled fidelity

TEST(Runtime, TiledBackendMatchesSerialTiledReference) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(26);
  constexpr std::size_t kRequests = 4;
  constexpr std::size_t kMcSamples = 3;
  constexpr std::uint64_t kSeed = 777;
  constexpr double kDropP = 0.15;

  serve::RuntimeConfig config;
  config.backend = serve::Backend::kTiled;
  config.workers = 2;
  config.mc_samples = kMcSamples;
  config.seed = kSeed;
  config.spindrop_p = kDropP;
  config.tile_seed = 42;
  serve::Runtime runtime(model, config);
  const auto served = serve_all(runtime, data, kRequests);

  core::BuiltModel staging = model.clone();
  core::TiledMlp reference(staging.net, config.tile, config.tile_seed);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const core::McPredictor predictor(
        kMcSamples, serve::Runtime::request_stream_seed(kSeed, i));
    const core::Prediction expected = predictor.predict(
        data.batch(i, i + 1).first,
        core::McPredictor::SeededForward(
            [&reference, kDropP](const nn::Tensor& x, std::uint64_t pass_seed) {
              reference.reseed(pass_seed);
              return reference.forward_spindrop(x, kDropP, nullptr);
            }));
    ASSERT_EQ(served[i].probs.size(), expected.mean_probs.numel());
    for (std::size_t c = 0; c < served[i].probs.size(); ++c) {
      ASSERT_EQ(served[i].probs[c], expected.mean_probs[c])
          << "request " << i << " class " << c;
    }
    EXPECT_EQ(served[i].entropy, expected.entropy.front());
    EXPECT_GT(served[i].energy_pj, 0.0);  // measured, not census-derived
  }
}

TEST(TiledMcEvaluator, ThreadCountInvariantIncludingLedger) {
  core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(27);
  const nn::Tensor inputs = data.batch(0, 10).first;
  xbar::TileConfig tile;

  core::TiledEvalOptions serial;
  serial.mc_samples = 4;
  serial.dropout_p = 0.15;
  serial.threads = 1;
  serial.seed = 9;
  core::TiledEvalOptions pooled = serial;
  pooled.threads = 4;

  core::BuiltModel a = model.clone();
  core::BuiltModel b = model.clone();
  core::TiledMcEvaluator eval_serial(a.net, tile, 42, serial);
  core::TiledMcEvaluator eval_pooled(b.net, tile, 42, pooled);

  energy::EnergyLedger ledger_serial;
  energy::EnergyLedger ledger_pooled;
  const core::Prediction ps = eval_serial.predict(inputs, &ledger_serial);
  const core::Prediction pp = eval_pooled.predict(inputs, &ledger_pooled);

  ASSERT_EQ(ps.mean_probs.numel(), pp.mean_probs.numel());
  for (std::size_t i = 0; i < ps.mean_probs.numel(); ++i) {
    ASSERT_EQ(ps.mean_probs[i], pp.mean_probs[i]);
  }
  for (std::size_t i = 0; i < ps.entropy.size(); ++i) {
    ASSERT_EQ(ps.entropy[i], pp.entropy[i]);
    ASSERT_EQ(ps.mutual_info[i], pp.mutual_info[i]);
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(energy::Component::kCount_);
       ++c) {
    EXPECT_EQ(ledger_serial.count(static_cast<energy::Component>(c)),
              ledger_pooled.count(static_cast<energy::Component>(c)));
  }
}

// ----------------------------------------------------- cascade fidelity

struct CascadeRun {
  std::vector<serve::ServedPrediction> served;
  serve::RuntimeStats stats;
};

CascadeRun run_backend(const core::BuiltModel& model, const nn::Dataset& data,
                       std::size_t requests, serve::Backend backend,
                       double entropy_threshold, std::size_t workers) {
  serve::RuntimeConfig config;
  config.backend = backend;
  config.workers = workers;
  config.mc_samples = 3;
  config.seed = 777;
  config.spindrop_p = 0.15;
  config.tile_seed = 42;
  config.cascade.entropy_threshold = entropy_threshold;
  serve::Runtime runtime(model, config);
  CascadeRun run;
  run.served = serve_all(runtime, data, requests);
  run.stats = runtime.stats();
  return run;
}

// The cascade determinism contract: the request seed fixes the answer — the
// escalation threshold and the worker count only pick WHICH rung's bits a
// request carries, and those bits are exactly the bits the pure
// single-fidelity runtime would have served.
TEST(Runtime, CascadeDeterministicAcrossWorkersAndMatchesRungs) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(26);
  constexpr std::size_t kRequests = 6;

  const CascadeRun cheap =
      run_backend(model, data, kRequests, serve::Backend::kBehavioral, 0.0, 1);
  const CascadeRun expensive =
      run_backend(model, data, kRequests, serve::Backend::kTiled, 0.0, 1);

  // A mid threshold that provably splits the workload: the median cheap
  // entropy escalates itself and everything above it.
  std::vector<float> entropies;
  for (const auto& p : cheap.served) {
    entropies.push_back(p.entropy);
  }
  std::sort(entropies.begin(), entropies.end());
  const double mid = entropies[kRequests / 2];

  for (const double threshold : {0.0, mid, 1e9}) {
    const CascadeRun one =
        run_backend(model, data, kRequests, serve::Backend::kCascade, threshold, 1);
    const CascadeRun three =
        run_backend(model, data, kRequests, serve::Backend::kCascade, threshold, 3);
    std::uint64_t escalated = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
      // Worker-count invariance, including the escalation decision.
      ASSERT_EQ(one.served[i].escalated, three.served[i].escalated) << i;
      ASSERT_EQ(one.served[i].probs, three.served[i].probs) << i;
      ASSERT_EQ(one.served[i].entropy, three.served[i].entropy) << i;
      // Rung fidelity: an escalated answer is the tiled runtime's answer,
      // bit for bit; a non-escalated one is the behavioural runtime's.
      const auto& rung = one.served[i].escalated ? expensive : cheap;
      ASSERT_EQ(one.served[i].probs, rung.served[i].probs) << i;
      ASSERT_EQ(one.served[i].entropy, rung.served[i].entropy) << i;
      ASSERT_EQ(one.served[i].mutual_info, rung.served[i].mutual_info) << i;
      escalated += one.served[i].escalated ? 1 : 0;
    }
    EXPECT_EQ(one.stats.escalated, escalated);
    EXPECT_EQ(three.stats.escalated, escalated);
    if (threshold == 0.0) {
      // Entropy is non-negative, so threshold 0 escalates every request...
      EXPECT_EQ(escalated, kRequests);
    } else if (threshold >= 1e9) {
      // ...and an unreachable threshold escalates none.
      EXPECT_EQ(escalated, 0u);
    } else {
      EXPECT_GT(escalated, 0u);
      EXPECT_LT(escalated, kRequests);
    }
  }
}

// An escalated request pays both rungs: census-priced behavioural pass plus
// the measured electrical pass. A never-escalating cascade is priced (and
// answers) exactly like the behavioural backend.
TEST(Runtime, CascadeEnergyCombinesRungs) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(26);
  constexpr std::size_t kRequests = 3;

  const CascadeRun cheap =
      run_backend(model, data, kRequests, serve::Backend::kBehavioral, 0.0, 1);
  const CascadeRun expensive =
      run_backend(model, data, kRequests, serve::Backend::kTiled, 0.0, 1);
  const CascadeRun all =
      run_backend(model, data, kRequests, serve::Backend::kCascade, 0.0, 1);
  const CascadeRun none =
      run_backend(model, data, kRequests, serve::Backend::kCascade, 1e9, 1);

  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_GT(cheap.served[i].energy_pj, 0.0);  // census-priced
    EXPECT_DOUBLE_EQ(all.served[i].energy_pj,
                     cheap.served[i].energy_pj + expensive.served[i].energy_pj);
    EXPECT_DOUBLE_EQ(none.served[i].energy_pj, cheap.served[i].energy_pj);
    EXPECT_FALSE(none.served[i].escalated);
  }
}

TEST(CascadeBackend, ShouldEscalateGatesOnEntropyAndMargin) {
  serve::CascadeConfig config;
  config.entropy_threshold = 0.5;
  EXPECT_TRUE(serve::should_escalate(config, 0.5, 1.0));
  EXPECT_TRUE(serve::should_escalate(config, 0.9, 1.0));
  EXPECT_FALSE(serve::should_escalate(config, 0.49, 1.0));
  config.margin_threshold = 0.1;  // close top-2 race also escalates
  EXPECT_TRUE(serve::should_escalate(config, 0.1, 0.05));
  EXPECT_FALSE(serve::should_escalate(config, 0.1, 0.2));
}

// ------------------------------------------------- CNN electrical path

// The Table-I CNN runs end to end on the electrical substrate: conv stages
// through ConvTile (one MVM per output pixel), pooling/flattening as
// digital periphery, dense tail on DenseTiles.
TEST(TiledMlp, TableOneCnnRunsElectrically) {
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  core::BuiltModel cnn = core::make_binary_cnn(mc);
  xbar::TileConfig tile;
  core::TiledMlp hw(cnn.net, tile, 42);
  EXPECT_EQ(hw.conv_stage_count(), 2u);
  EXPECT_EQ(hw.layer_count(), 4u);
  EXPECT_EQ(hw.out_features(), 10u);

  // Stroke digits are 16x16 flat — exactly the CNN's input plane.
  const nn::Dataset data = tiny_dataset(31, 1);
  const nn::Tensor x = data.batch(0, 1).first;
  energy::EnergyLedger ledger;
  const nn::Tensor logits = hw.forward(x, &ledger);
  ASSERT_EQ(logits.dim(0), 1u);
  ASSERT_EQ(logits.dim(1), 10u);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_TRUE(std::isfinite(logits[c]));
  }
  // Conv stages charge the ledger like real crossbar reads.
  EXPECT_GT(ledger.count(energy::Component::kXbarCellRead), 0u);
  EXPECT_GT(ledger.count(energy::Component::kAdcConversion), 0u);

  // A reseeded SpinDrop pass is a pure function of (tiles, input, p, seed),
  // and a clone carries the programmed conv stages bit for bit.
  hw.reseed(5);
  const nn::Tensor a = hw.forward_spindrop(x, 0.2, nullptr);
  core::TiledMlp copy = hw.clone();
  copy.reseed(5);
  const nn::Tensor b = copy.forward_spindrop(x, 0.2, nullptr);
  hw.reseed(5);
  const nn::Tensor c = hw.forward_spindrop(x, 0.2, nullptr);
  ASSERT_EQ(a.numel(), b.numel());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]);
    ASSERT_EQ(a[i], c[i]);
  }

  // The repeated passes re-drove the tiles with mostly-identical inputs;
  // the event engine must have skipped rows.
  EXPECT_GT(hw.delta_stats().skip_ratio(), 0.0);
}

// --------------------------------------------------------- observability

// The observability determinism contract: tracing and metrics read clocks,
// never RNG streams — enabling them must not change a single result bit.
TEST(Runtime, TracingOnOffPredictionsBitwiseIdentical) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(38);
  constexpr std::size_t kRequests = 10;
  std::vector<serve::ServedPrediction> baseline;
  for (const bool tracing : {false, true}) {
    serve::RuntimeConfig config;
    config.workers = 2;
    config.mc_samples = 4;
    config.batcher.max_batch = 4;
    config.batcher.max_linger = 1ms;  // coalesce into real batches
    config.trace.enabled = tracing;
    config.trace.sample_every = 1;
    serve::Runtime runtime(model, config);
    std::vector<std::future<serve::ServedPrediction>> futures;
    for (std::size_t i = 0; i < kRequests; ++i) {
      futures.push_back(
          runtime.submit(sample_row(data, i), nn::mix_seed(0xace, i)));
    }
    std::vector<serve::ServedPrediction> served;
    for (auto& f : futures) {
      served.push_back(f.get());
    }
    if (!tracing) {
      baseline = std::move(served);
      continue;
    }
    ASSERT_EQ(baseline.size(), served.size());
    for (std::size_t i = 0; i < served.size(); ++i) {
      ASSERT_EQ(baseline[i].probs.size(), served[i].probs.size());
      for (std::size_t c = 0; c < served[i].probs.size(); ++c) {
        ASSERT_EQ(baseline[i].probs[c], served[i].probs[c])
            << "request " << i << " class " << c;
      }
      ASSERT_EQ(baseline[i].predicted_class, served[i].predicted_class);
      ASSERT_EQ(baseline[i].entropy, served[i].entropy);
      ASSERT_EQ(baseline[i].mutual_info, served[i].mutual_info);
      ASSERT_EQ(baseline[i].accepted, served[i].accepted);
    }
  }
}

// The same contract through the cascade (and its tiled escalation rung,
// whose per-tile spans ride the same tracer).
TEST(Runtime, CascadeTracingOnOffBitwiseIdenticalAndSpansCarryDeltaStats) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(39);
  constexpr std::size_t kRequests = 3;
  std::vector<serve::ServedPrediction> baseline;
  for (const bool tracing : {false, true}) {
    serve::RuntimeConfig config;
    config.backend = serve::Backend::kCascade;
    config.workers = 1;
    config.mc_samples = 2;
    config.spindrop_p = 0.15;
    config.cascade.entropy_threshold = 0.0;  // escalate everything
    config.trace.enabled = tracing;
    serve::Runtime runtime(model, config);
    std::vector<std::future<serve::ServedPrediction>> futures;
    for (std::size_t i = 0; i < kRequests; ++i) {
      futures.push_back(
          runtime.submit(sample_row(data, i), nn::mix_seed(0xbee, i)));
    }
    std::vector<serve::ServedPrediction> served;
    for (auto& f : futures) {
      served.push_back(f.get());
    }
    if (!tracing) {
      baseline = std::move(served);
      continue;
    }
    for (std::size_t i = 0; i < served.size(); ++i) {
      ASSERT_EQ(baseline[i].probs.size(), served[i].probs.size());
      for (std::size_t c = 0; c < served[i].probs.size(); ++c) {
        ASSERT_EQ(baseline[i].probs[c], served[i].probs[c]);
      }
      EXPECT_TRUE(served[i].escalated);
    }
    // The trace covers the whole escalation chain: cascade wrapper, both
    // rungs, and the electrical path's per-tile spans with the event
    // engine's rows-skipped census attached.
    std::set<std::string> names;
    bool tile_span_has_census = false;
    for (const auto& span : runtime.tracer().spans()) {
      names.insert(span.name);
      if (span.name.rfind("tile:", 0) == 0) {
        for (const auto& [key, value] : span.args) {
          if (key == "rows_skipped" && value >= 0.0) {
            tile_span_has_census = true;
          }
        }
      }
    }
    EXPECT_TRUE(names.count("cascade"));
    EXPECT_TRUE(names.count("rung:behavioral"));
    EXPECT_TRUE(names.count("rung:tiled"));
    EXPECT_TRUE(names.count("tile:dense0"));
    EXPECT_TRUE(tile_span_has_census);
  }
}

TEST(Runtime, TraceSpansCoverRequestLifecycle) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(40);
  constexpr std::size_t kRequests = 6;
  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 2;
  config.trace.enabled = true;
  config.trace.sample_every = 1;
  serve::Runtime runtime(model, config);
  (void)serve_all(runtime, data, kRequests);
  runtime.shutdown();

  // Every request's track carries the full lifecycle: a request span
  // enclosing queue, forward and policy.
  const std::vector<obs::SpanRecord> spans = runtime.tracer().spans();
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    const std::uint64_t track = obs::Tracer::kRequestTrackBase + id;
    const obs::SpanRecord* request = nullptr;
    const obs::SpanRecord* queue = nullptr;
    const obs::SpanRecord* forward = nullptr;
    const obs::SpanRecord* policy = nullptr;
    for (const auto& span : spans) {
      if (span.track != track) {
        continue;
      }
      if (span.name == "request") request = &span;
      if (span.name == "queue") queue = &span;
      if (span.name == "forward") forward = &span;
      if (span.name == "policy") policy = &span;
    }
    ASSERT_NE(request, nullptr) << "request " << id;
    ASSERT_NE(queue, nullptr) << "request " << id;
    ASSERT_NE(forward, nullptr) << "request " << id;
    ASSERT_NE(policy, nullptr) << "request " << id;
    // Nesting: the request span contains its children; the queue interval
    // precedes the forward interval.
    EXPECT_LE(request->begin_us, queue->begin_us);
    EXPECT_LE(queue->end_us, forward->begin_us);
    EXPECT_LE(forward->end_us, request->end_us);
    EXPECT_LE(policy->begin_us, policy->end_us);
    EXPECT_LE(request->begin_us, policy->begin_us);
    EXPECT_LE(policy->end_us, request->end_us);
  }
  // Worker-track spans: every pop got a batch span, every forward a rung
  // span, and they share the worker's thread track.
  std::size_t batch_spans = 0;
  std::size_t rung_spans = 0;
  for (const auto& span : spans) {
    batch_spans += span.name == "batch" ? 1 : 0;
    rung_spans += span.name == "rung:behavioral" ? 1 : 0;
  }
  EXPECT_GE(batch_spans, 1u);
  EXPECT_GE(rung_spans, 1u);
  EXPECT_EQ(runtime.tracer().dropped(), 0u);

  // And the export is a loadable Chrome trace.
  const std::string json = runtime.tracer().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
}

TEST(Runtime, TraceSamplingGatesRequestSpans) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(41);
  serve::RuntimeConfig config;
  config.workers = 1;
  config.mc_samples = 2;
  config.trace.enabled = true;
  config.trace.sample_every = 2;  // even request ids only
  serve::Runtime runtime(model, config);
  (void)serve_all(runtime, data, 6);
  runtime.shutdown();
  std::size_t request_spans = 0;
  for (const auto& span : runtime.tracer().spans()) {
    if (span.name == "request") {
      ++request_spans;
      EXPECT_EQ((span.track - obs::Tracer::kRequestTrackBase) % 2, 0u);
    }
  }
  EXPECT_EQ(request_spans, 3u);  // ids 0, 2, 4
}

TEST(Runtime, MetricsRegistryExposesServeSeries) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(42);
  constexpr std::size_t kRequests = 8;
  serve::RuntimeConfig config;
  config.workers = 2;
  config.mc_samples = 2;
  serve::Runtime runtime(model, config);
  (void)serve_all(runtime, data, kRequests);

  const serve::RuntimeStats stats = runtime.stats();
  const obs::Registry& metrics = runtime.metrics();
  ASSERT_NE(metrics.find_counter("serve.requests"), nullptr);
  EXPECT_EQ(metrics.find_counter("serve.requests")->value(), kRequests);
  EXPECT_EQ(metrics.find_counter("serve.requests")->value(), stats.requests);
  EXPECT_EQ(metrics.find_counter("serve.batches")->value(), stats.batches);
  EXPECT_EQ(metrics.find_counter("serve.accepted")->value() +
                metrics.find_counter("serve.abstained")->value(),
            kRequests);
  // The batcher's instruments: one batch-size sample per non-empty pop,
  // and the queue-depth gauge drained back to zero.
  const obs::Histogram* batch_size = metrics.find_histogram("serve.batch_size");
  ASSERT_NE(batch_size, nullptr);
  EXPECT_EQ(batch_size->count(), stats.batches);
  EXPECT_DOUBLE_EQ(metrics.find_gauge("serve.queue_depth")->value(), 0.0);
  // Latency histograms: one sample per completed request, and the stats()
  // percentiles are exactly histogram reads.
  const obs::Histogram* latency =
      metrics.find_histogram("serve.latency.total_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), kRequests);
  EXPECT_DOUBLE_EQ(stats.window_p50_us, latency->quantile(0.50));
  EXPECT_DOUBLE_EQ(stats.window_p99_us, latency->quantile(0.99));
  EXPECT_GT(stats.window_p50_us, 0.0);
  // Energy: census-priced behavioural total folds into the gauge.
  EXPECT_DOUBLE_EQ(metrics.find_gauge("serve.energy_pj.total")->value(),
                   stats.total_energy_pj);
  // Exposition renders the serve series.
  const std::string prom = obs::render_prometheus(metrics);
  EXPECT_NE(prom.find("serve_requests " + std::to_string(kRequests)),
            std::string::npos);
  EXPECT_NE(prom.find("serve_latency_total_us_count"), std::string::npos);
}

TEST(Runtime, TiledBackendFoldsPerComponentEnergyIntoRegistry) {
  const core::BuiltModel model = tiny_model();
  const nn::Dataset data = tiny_dataset(43);
  serve::RuntimeConfig config;
  config.backend = serve::Backend::kTiled;
  config.workers = 1;
  config.mc_samples = 2;
  serve::Runtime runtime(model, config);
  (void)serve_all(runtime, data, 2);
  const obs::Registry& metrics = runtime.metrics();
  const obs::Counter* reads = metrics.find_counter("energy.events.xbar_cell_read");
  ASSERT_NE(reads, nullptr);
  EXPECT_GT(reads->value(), 0u);
  const obs::Gauge* read_pj = metrics.find_gauge("energy.pj.xbar_cell_read");
  ASSERT_NE(read_pj, nullptr);
  EXPECT_GT(read_pj->value(), 0.0);
}

TEST(TiledMcEvaluator, CnnPredictsThroughConvTiles) {
  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.seed = 7;
  mc.dropout_p = 0.2;
  core::BuiltModel cnn = core::make_binary_cnn(mc);

  const nn::Dataset data = tiny_dataset(33, 1);
  const nn::Tensor inputs = data.batch(0, 2).first;
  core::TiledEvalOptions options;
  options.mc_samples = 2;
  options.dropout_p = 0.15;
  options.threads = 1;
  xbar::TileConfig tile;
  core::TiledMcEvaluator evaluator(cnn.net, tile, 42, options);
  const core::Prediction p = evaluator.predict(inputs);
  ASSERT_EQ(p.mean_probs.dim(0), 2u);
  ASSERT_EQ(p.mean_probs.dim(1), 10u);
  for (std::size_t row = 0; row < 2; ++row) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 10; ++c) {
      sum += p.mean_probs.at(row, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    EXPECT_GE(p.entropy[row], 0.0);
  }
  EXPECT_GT(evaluator.delta_stats().rows_total, 0u);
}

}  // namespace
