// Tests for the extension modules: MC-DropConnect, the retention/drift
// model, and model checkpointing.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/dropconnect.h"
#include "core/hw_model.h"
#include "core/models.h"
#include "device/retention.h"
#include "nn/checkpoint.h"
#include "test_util.h"

namespace neuspin {
namespace {

// ---------------------------------------------------------- DropConnect ----

TEST(DropConnect, DeterministicWithoutTrainingOrMc) {
  std::mt19937_64 engine(1);
  core::DropConnectDense layer(8, 4, 0.5, engine, 2);
  nn::Tensor x = nn::Tensor::randn({3, 8}, 1.0f, engine);
  const nn::Tensor a = layer.forward(x, false);
  const nn::Tensor b = layer.forward(x, false);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(DropConnect, McPassesDropConnections) {
  std::mt19937_64 engine(3);
  core::DropConnectDense layer(32, 8, 0.4, engine, 4);
  layer.enable_mc(true);
  nn::Tensor x({1, 32}, 1.0f);
  const nn::Tensor a = layer.forward(x, false);
  bool any_diff = false;
  for (int tries = 0; tries < 10 && !any_diff; ++tries) {
    const nn::Tensor b = layer.forward(x, false);
    for (std::size_t i = 0; i < a.numel(); ++i) {
      if (a[i] != b[i]) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff) << "per-weight masks must randomize MC passes";
}

TEST(DropConnect, ConsumesOneDecisionPerWeight) {
  std::mt19937_64 engine(5);
  energy::EnergyLedger ledger;
  core::DropConnectDense layer(16, 4, 0.3, engine, 6, &ledger);
  layer.enable_mc(true);
  nn::Tensor x({1, 16}, 1.0f);
  (void)layer.forward(x, false);
  EXPECT_EQ(ledger.count(energy::Component::kRngDropoutCycle), 64u)
      << "the paper's scalability point: RNG cost equals the weight count";
  EXPECT_EQ(layer.decisions_per_pass(), 64u);
}

TEST(DropConnect, TrainsOnToyProblem) {
  std::mt19937_64 engine(7);
  core::DropConnectDense layer(8, 2, 0.2, engine, 8);
  nn::Tensor x = nn::Tensor::randn({16, 8}, 1.0f, engine);
  neuspin::testing::ProbeLoss loss(nn::Shape{16, 2});
  auto params = layer.parameters();
  float first = 0.0f;
  for (int step = 0; step < 60; ++step) {
    const nn::Tensor y = layer.forward(x, true);
    if (step == 0) {
      first = loss.value(y);
    }
    (void)layer.backward(loss.grad());
    for (auto& p : params) {
      for (std::size_t i = 0; i < p.value->numel(); ++i) {
        (*p.value)[i] -= 0.01f * (*p.grad)[i];
      }
      p.grad->fill(0.0f);
    }
  }
  const nn::Tensor y = layer.forward(x, false);
  EXPECT_LT(loss.value(y), first);
}

TEST(DropConnect, RejectsInvalidProbability) {
  std::mt19937_64 engine(9);
  EXPECT_THROW(core::DropConnectDense(4, 2, 1.0, engine, 1), std::invalid_argument);
  EXPECT_THROW(core::DropConnectDense(4, 2, -0.1, engine, 1), std::invalid_argument);
}

// ------------------------------------------------------------- Retention ----

TEST(Retention, FlipProbabilityGrowsWithTime) {
  device::RetentionModel model{device::MtjParams{}};
  double prev = 0.0;
  for (double t : {1.0, 1e3, 1e6, 1e9}) {
    const double p = model.flip_probability(t);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 0.5);
    prev = p;
  }
}

TEST(Retention, HigherDeltaRetainsLonger) {
  device::MtjParams weak;
  weak.delta = 30.0;
  device::MtjParams strong;
  strong.delta = 60.0;
  device::RetentionModel weak_model(weak);
  device::RetentionModel strong_model(strong);
  EXPECT_GT(strong_model.retention_seconds(0.01), weak_model.retention_seconds(0.01));
  EXPECT_GT(weak_model.flip_probability(1e6), strong_model.flip_probability(1e6));
}

TEST(Retention, TenYearClassRetentionAtHighDelta) {
  device::MtjParams params;
  params.delta = 60.0;
  device::RetentionModel model(params);
  constexpr double kTenYears = 10.0 * 365.25 * 24 * 3600;
  EXPECT_LT(model.flip_probability(kTenYears), 1e-3)
      << "Delta ~ 60 is the canonical 10-year retention design point";
}

TEST(Retention, AsymptoteIsHalf) {
  device::MtjParams params;
  params.delta = 5.0;  // thermally weak: relaxes quickly
  device::RetentionModel model(params);
  EXPECT_NEAR(model.flip_probability(1e9), 0.5, 1e-6);
}

TEST(Retention, RejectsInvalidArguments) {
  device::RetentionModel model{device::MtjParams{}};
  EXPECT_THROW((void)model.flip_probability(-1.0), std::invalid_argument);
  EXPECT_THROW((void)model.retention_seconds(0.6), std::invalid_argument);
}

// ------------------------------------------------------------ Checkpoint ----

TEST(Checkpoint, RoundTripsTrainedModel) {
  core::ModelConfig config;
  config.method = core::Method::kSubsetVi;
  core::BuiltModel model = core::make_binary_mlp(config, 8, {16}, 4);
  std::mt19937_64 engine(11);
  // Dirty the parameters and run a training-mode pass so batch-norm
  // running stats are non-trivial.
  for (auto& p : model.net.parameters()) {
    *p.value = nn::Tensor::randn(p.value->shape(), 0.5f, engine);
  }
  nn::Tensor x = nn::Tensor::randn({32, 8}, 1.0f, engine);
  (void)model.net.forward(x, true);
  const nn::Tensor before = model.net.forward(x, false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "neuspin_ckpt_test.bin").string();
  nn::save_checkpoint(model.net, path);

  // A fresh model with the same architecture but different weights.
  core::BuiltModel restored = core::make_binary_mlp(config, 8, {16}, 4);
  nn::load_checkpoint(restored.net, path);
  const nn::Tensor after = restored.net.forward(x, false);
  ASSERT_EQ(before.shape(), after.shape());
  for (std::size_t i = 0; i < before.numel(); ++i) {
    ASSERT_FLOAT_EQ(before[i], after[i]) << "checkpoint must round-trip exactly";
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  core::ModelConfig config;
  config.method = core::Method::kDeterministic;
  core::BuiltModel small = core::make_binary_mlp(config, 8, {16}, 4);
  core::BuiltModel large = core::make_binary_mlp(config, 8, {32}, 4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "neuspin_ckpt_mismatch.bin").string();
  nn::save_checkpoint(small.net, path);
  EXPECT_THROW(nn::load_checkpoint(large.net, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsMissingAndCorruptFiles) {
  core::ModelConfig config;
  core::BuiltModel model = core::make_binary_mlp(config, 8, {16}, 4);
  EXPECT_THROW(nn::load_checkpoint(model.net, "/nonexistent/ckpt.bin"),
               std::runtime_error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "neuspin_ckpt_bad.bin").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_THROW(nn::load_checkpoint(model.net, path), std::runtime_error);
  std::filesystem::remove(path);
}

// --------------------------------------------------------- perturbation ----

TEST(PerturbWeights, SkipsNormalizationRegistersByDefault) {
  core::ModelConfig config;
  config.method = core::Method::kDeterministic;
  core::BuiltModel model = core::make_binary_mlp(config, 8, {16}, 4);
  // Snapshot the batch-norm gamma (a normalization parameter).
  nn::BatchNorm* bn = nullptr;
  for (std::size_t i = 0; i < model.net.size(); ++i) {
    if (auto* candidate = dynamic_cast<nn::BatchNorm*>(&model.net.layer(i))) {
      bn = candidate;
      break;
    }
  }
  ASSERT_NE(bn, nullptr);
  const nn::Tensor gamma_before = bn->gamma();
  const std::size_t touched = core::perturb_weights(model.net, 0.1f, 13);
  EXPECT_GT(touched, 0u);
  for (std::size_t i = 0; i < gamma_before.numel(); ++i) {
    EXPECT_FLOAT_EQ(bn->gamma()[i], gamma_before[i])
        << "digital norm registers must not see conductance variation";
  }
  const std::size_t with_norm = core::perturb_weights(model.net, 0.1f, 13, true);
  EXPECT_GT(with_norm, touched);
}

}  // namespace
}  // namespace neuspin
