// Unit tests for the tensor substrate.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/tensor.h"

namespace neuspin::nn {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  EXPECT_FLOAT_EQ(t.sum(), 10.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_FLOAT_EQ(r.at(1, 1), 4.0f);
  EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 2, 2, 2});
  t.at4(1, 0, 1, 0) = 7.0f;
  EXPECT_FLOAT_EQ(t[1 * 8 + 0 * 4 + 1 * 2 + 0], 7.0f);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a += b;
  EXPECT_FLOAT_EQ(a[2], 9.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.abs_mean(), 2.5f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_EQ(t.argmax(), 3u);
}

TEST(Tensor, RandnStatistics) {
  std::mt19937_64 engine(1);
  Tensor t = Tensor::randn({10000}, 0.5f, engine);
  EXPECT_NEAR(t.mean(), 0.0f, 0.02f);
  float var = 0.0f;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    var += t[i] * t[i];
  }
  var /= static_cast<float>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 0.5f, 0.02f);
}

TEST(Matmul, MatchesHandComputed) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, TransposedVariantsConsistent) {
  std::mt19937_64 engine(3);
  Tensor a = Tensor::randn({4, 5}, 1.0f, engine);
  Tensor b = Tensor::randn({5, 3}, 1.0f, engine);
  Tensor c = matmul(a, b);

  // matmul_transposed(a, b^T stored as (3x5)) must equal c.
  Tensor bt({3, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      bt.at(j, i) = b.at(i, j);
    }
  }
  Tensor c2 = matmul_transposed(a, bt);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], c2[i], 1e-4f);
  }

  // matmul_a_transposed(a^T stored as (4x5) -> treats a as (k x m)).
  Tensor at({5, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      at.at(j, i) = a.at(i, j);
    }
  }
  Tensor c3 = matmul_a_transposed(at, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], c3[i], 1e-4f);
  }
}

TEST(Matmul, IncompatibleShapesThrow) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

// ------------------------------------------- blocked-kernel equivalence ----

/// Reference kernel: the plain ascending-k triple loop the blocked kernels
/// must reproduce (ascending-k accumulation is the determinism contract).
Tensor reference_matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::size_t i = 0; i < a.dim(0); ++i) {
    for (std::size_t p = 0; p < a.dim(1); ++p) {
      for (std::size_t j = 0; j < b.dim(1); ++j) {
        c.at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
  return c;
}

// Shapes chosen to land inside, exactly on, and across the kernels' k- and
// j-block boundaries (32 and 256).
class BlockedKernels
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(BlockedKernels, MatmulMatchesReferenceBitwise) {
  const auto [m, k, n] = GetParam();
  std::mt19937_64 engine(11);
  const Tensor a = Tensor::randn({m, k}, 1.0f, engine);
  const Tensor b = Tensor::randn({k, n}, 1.0f, engine);
  const Tensor c = matmul(a, b);
  const Tensor ref = reference_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    ASSERT_EQ(c[i], ref[i]) << "element " << i;
  }
}

TEST_P(BlockedKernels, TransposedVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  std::mt19937_64 engine(13);
  const Tensor a = Tensor::randn({m, k}, 1.0f, engine);
  const Tensor b = Tensor::randn({k, n}, 1.0f, engine);
  const Tensor ref = reference_matmul(a, b);

  Tensor bt({n, k});
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      bt.at(j, p) = b.at(p, j);
    }
  }
  const Tensor c1 = matmul_transposed(a, bt);
  // The 8-lane dot kernel reassociates deterministically; compare with a
  // tolerance scaled to the reduction length.
  const float tol = 1e-5f * static_cast<float>(k);
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    ASSERT_NEAR(c1[i], ref[i], tol) << "element " << i;
  }

  Tensor at({k, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      at.at(p, i) = a.at(i, p);
    }
  }
  const Tensor c2 = matmul_a_transposed(at, b);
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    ASSERT_EQ(c2[i], ref[i]) << "element " << i;
  }
}

// Row independence: row i of a batched product must equal the product of
// row i alone, bit for bit, whatever the batch size. This is the property
// the fused Monte-Carlo path (T passes x B requests stacked into one
// forward) is built on.
TEST_P(BlockedKernels, MatmulRowsAreBatchSizeInvariant) {
  const auto [m, k, n] = GetParam();
  std::mt19937_64 engine(17);
  const Tensor a = Tensor::randn({m, k}, 1.0f, engine);
  const Tensor b = Tensor::randn({k, n}, 1.0f, engine);
  const Tensor full = matmul(a, b);
  for (std::size_t i = 0; i < m; ++i) {
    Tensor row({1, k});
    for (std::size_t p = 0; p < k; ++p) {
      row.at(0, p) = a.at(i, p);
    }
    const Tensor alone = matmul(row, b);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(full.at(i, j), alone.at(0, j)) << "row " << i << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockBoundaryShapes, BlockedKernels,
    ::testing::Values(std::make_tuple(1, 7, 5), std::make_tuple(3, 32, 16),
                      std::make_tuple(8, 33, 64), std::make_tuple(17, 100, 10),
                      std::make_tuple(5, 256, 300), std::make_tuple(64, 96, 257)));

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 4}, std::vector<float>{1, 2, 3, 4, -1, 0, 1, 100});
  Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    float s = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) {
      s += p.at(i, j);
      EXPECT_GE(p.at(i, j), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(p.at(1, 3), 1.0f, 1e-5f);
}

TEST(Softmax, InvariantToShift) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  Tensor pa = softmax_rows(a);
  Tensor pb = softmax_rows(b);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(pa.at(0, j), pb.at(0, j), 1e-6f);
  }
}

}  // namespace
}  // namespace neuspin::nn
