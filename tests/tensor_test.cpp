// Unit tests for the tensor substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/tensor.h"

namespace neuspin::nn {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  EXPECT_FLOAT_EQ(t.sum(), 10.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_FLOAT_EQ(r.at(1, 1), 4.0f);
  EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 2, 2, 2});
  t.at4(1, 0, 1, 0) = 7.0f;
  EXPECT_FLOAT_EQ(t[1 * 8 + 0 * 4 + 1 * 2 + 0], 7.0f);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  a += b;
  EXPECT_FLOAT_EQ(a[2], 9.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.abs_mean(), 2.5f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_EQ(t.argmax(), 3u);
}

TEST(Tensor, RandnStatistics) {
  std::mt19937_64 engine(1);
  Tensor t = Tensor::randn({10000}, 0.5f, engine);
  EXPECT_NEAR(t.mean(), 0.0f, 0.02f);
  float var = 0.0f;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    var += t[i] * t[i];
  }
  var /= static_cast<float>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 0.5f, 0.02f);
}

TEST(Matmul, MatchesHandComputed) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, TransposedVariantsConsistent) {
  std::mt19937_64 engine(3);
  Tensor a = Tensor::randn({4, 5}, 1.0f, engine);
  Tensor b = Tensor::randn({5, 3}, 1.0f, engine);
  Tensor c = matmul(a, b);

  // matmul_transposed(a, b^T stored as (3x5)) must equal c.
  Tensor bt({3, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      bt.at(j, i) = b.at(i, j);
    }
  }
  Tensor c2 = matmul_transposed(a, bt);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], c2[i], 1e-4f);
  }

  // matmul_a_transposed(a^T stored as (4x5) -> treats a as (k x m)).
  Tensor at({5, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      at.at(j, i) = a.at(i, j);
    }
  }
  Tensor c3 = matmul_a_transposed(at, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], c3[i], 1e-4f);
  }
}

TEST(Matmul, IncompatibleShapesThrow) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

// ------------------------------------------- blocked-kernel equivalence ----

/// Reference kernel: the plain ascending-k triple loop the blocked kernels
/// must reproduce (ascending-k accumulation is the determinism contract).
Tensor reference_matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::size_t i = 0; i < a.dim(0); ++i) {
    for (std::size_t p = 0; p < a.dim(1); ++p) {
      for (std::size_t j = 0; j < b.dim(1); ++j) {
        c.at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
  return c;
}

// Shapes chosen to land inside, exactly on, and across the kernels' k- and
// j-block boundaries (32 and 256).
class BlockedKernels
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(BlockedKernels, MatmulMatchesReferenceBitwise) {
  const auto [m, k, n] = GetParam();
  std::mt19937_64 engine(11);
  const Tensor a = Tensor::randn({m, k}, 1.0f, engine);
  const Tensor b = Tensor::randn({k, n}, 1.0f, engine);
  const Tensor c = matmul(a, b);
  const Tensor ref = reference_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    ASSERT_EQ(c[i], ref[i]) << "element " << i;
  }
}

TEST_P(BlockedKernels, TransposedVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  std::mt19937_64 engine(13);
  const Tensor a = Tensor::randn({m, k}, 1.0f, engine);
  const Tensor b = Tensor::randn({k, n}, 1.0f, engine);
  const Tensor ref = reference_matmul(a, b);

  Tensor bt({n, k});
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      bt.at(j, p) = b.at(p, j);
    }
  }
  const Tensor c1 = matmul_transposed(a, bt);
  // The 8-lane dot kernel reassociates deterministically; compare with a
  // tolerance scaled to the reduction length.
  const float tol = 1e-5f * static_cast<float>(k);
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    ASSERT_NEAR(c1[i], ref[i], tol) << "element " << i;
  }

  Tensor at({k, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      at.at(p, i) = a.at(i, p);
    }
  }
  const Tensor c2 = matmul_a_transposed(at, b);
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    ASSERT_EQ(c2[i], ref[i]) << "element " << i;
  }
}

// Row independence: row i of a batched product must equal the product of
// row i alone, bit for bit, whatever the batch size. This is the property
// the fused Monte-Carlo path (T passes x B requests stacked into one
// forward) is built on.
TEST_P(BlockedKernels, MatmulRowsAreBatchSizeInvariant) {
  const auto [m, k, n] = GetParam();
  std::mt19937_64 engine(17);
  const Tensor a = Tensor::randn({m, k}, 1.0f, engine);
  const Tensor b = Tensor::randn({k, n}, 1.0f, engine);
  const Tensor full = matmul(a, b);
  for (std::size_t i = 0; i < m; ++i) {
    Tensor row({1, k});
    for (std::size_t p = 0; p < k; ++p) {
      row.at(0, p) = a.at(i, p);
    }
    const Tensor alone = matmul(row, b);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(full.at(i, j), alone.at(0, j)) << "row " << i << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockBoundaryShapes, BlockedKernels,
    ::testing::Values(std::make_tuple(1, 7, 5), std::make_tuple(3, 32, 16),
                      std::make_tuple(8, 33, 64), std::make_tuple(17, 100, 10),
                      std::make_tuple(5, 256, 300), std::make_tuple(64, 96, 257)));

// ----------------------------------------------------- im2col / col2im ----

/// Reference patch extraction straight from the definition: one nested
/// loop per output pixel, explicit bounds checks, zero for padding taps.
Tensor reference_im2col(const Tensor& input, std::size_t kernel, std::size_t padding) {
  const std::size_t n = input.dim(0);
  const std::size_t c = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = h + 2 * padding - kernel + 1;
  const std::size_t ow = w + 2 * padding - kernel + 1;
  Tensor cols({n * oh * ow, c * kernel * kernel});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t p = (b * oh + oy) * ow + ox;
        for (std::size_t ic = 0; ic < c; ++ic) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                        static_cast<std::ptrdiff_t>(padding);
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                        static_cast<std::ptrdiff_t>(padding);
              const bool inside = iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) &&
                                  ix >= 0 && ix < static_cast<std::ptrdiff_t>(w);
              cols.at(p, (ic * kernel + ky) * kernel + kx) =
                  inside ? input.at4(b, ic, static_cast<std::size_t>(iy),
                                     static_cast<std::size_t>(ix))
                         : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

class Im2colShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                     std::size_t, std::size_t>> {};

TEST_P(Im2colShapes, MatchesReferenceExtraction) {
  const auto [n, c, h, w, kernel, padding] = GetParam();
  std::mt19937_64 engine(23);
  const Tensor input = Tensor::randn({n, c, h, w}, 1.0f, engine);
  const Tensor cols = im2col(input, kernel, padding);
  const Tensor ref = reference_im2col(input, kernel, padding);
  ASSERT_EQ(cols.shape(), ref.shape());
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    ASSERT_EQ(cols[i], ref[i]) << "element " << i;
  }
}

// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)> for
// every pair, which pins the scatter indices against the gather indices.
TEST_P(Im2colShapes, Col2imIsAdjointOfIm2col) {
  const auto [n, c, h, w, kernel, padding] = GetParam();
  std::mt19937_64 engine(29);
  const Tensor x = Tensor::randn({n, c, h, w}, 1.0f, engine);
  const Tensor cols = im2col(x, kernel, padding);
  const Tensor y = Tensor::randn(cols.shape(), 1.0f, engine);
  const Tensor back = col2im(y, x.shape(), kernel, padding);

  double forward_ip = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    forward_ip += static_cast<double>(cols[i]) * static_cast<double>(y[i]);
  }
  double adjoint_ip = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    adjoint_ip += static_cast<double>(x[i]) * static_cast<double>(back[i]);
  }
  EXPECT_NEAR(forward_ip, adjoint_ip, 1e-3 * std::abs(forward_ip) + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    PatchGeometries, Im2colShapes,
    ::testing::Values(
        std::make_tuple(1, 1, 3, 3, 3, 0),   // kernel == image, no padding
        std::make_tuple(1, 1, 3, 3, 3, 1),   // kernel == image, padded
        std::make_tuple(2, 3, 5, 5, 3, 1),   // the conv-layer default
        std::make_tuple(1, 2, 4, 6, 3, 2),   // padding > 1, non-square
        std::make_tuple(3, 1, 16, 16, 3, 1), // the small-CNN conv1 geometry
        std::make_tuple(1, 4, 1, 1, 1, 0),   // 1x1 image, 1x1 kernel
        std::make_tuple(2, 2, 2, 2, 2, 1))); // even kernel, padded

// The consecutive-duplicate cache (the T stacked copies of one request in
// the fused Monte-Carlo path) must be invisible: a batch with repeated
// images lowers to exactly the per-image lowering, bit for bit, including
// when the repeat is broken and resumed.
TEST(Im2col, ConsecutiveDuplicateImagesLowerIdentically) {
  std::mt19937_64 engine(41);
  const Tensor a = Tensor::randn({1, 2, 5, 5}, 1.0f, engine);
  const Tensor b = Tensor::randn({1, 2, 5, 5}, 1.0f, engine);

  // Stack [A, A, B, A]: a duplicate run, a break, and a non-consecutive
  // repeat (which must NOT be cached — only neighbor equality is checked).
  Tensor stacked({4, 2, 5, 5});
  const std::size_t image = a.numel();
  for (std::size_t n = 0; n < 4; ++n) {
    const Tensor& src = (n == 2) ? b : a;
    std::copy(src.data().begin(), src.data().end(),
              stacked.data().begin() + static_cast<std::ptrdiff_t>(n * image));
  }

  const Tensor cols = im2col(stacked, 3, 1);
  const Tensor cols_a = im2col(a, 3, 1);
  const Tensor cols_b = im2col(b, 3, 1);
  const std::size_t block = cols_a.numel();
  ASSERT_EQ(cols.numel(), 4 * block);
  for (std::size_t n = 0; n < 4; ++n) {
    const Tensor& expected = (n == 2) ? cols_b : cols_a;
    for (std::size_t i = 0; i < block; ++i) {
      ASSERT_EQ(cols[n * block + i], expected[i]) << "image " << n << " tap " << i;
    }
  }
}

TEST(Im2col, PaddingTapsAreExactZeros) {
  // An all-ones image: every zero in the patch matrix must be a padding
  // tap, and the zero count must match the geometry exactly.
  const Tensor input({1, 1, 2, 2}, 1.0f);
  const Tensor cols = im2col(input, 3, 1);
  ASSERT_EQ(cols.dim(0), 4u);  // 2x2 output pixels
  ASSERT_EQ(cols.dim(1), 9u);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    zeros += cols[i] == 0.0f ? 1 : 0;
  }
  EXPECT_EQ(zeros, 4u * 9u - 4u * 4u);  // each patch sees all 4 real pixels
}

TEST(Im2col, RejectsBadGeometry) {
  const Tensor input({1, 1, 2, 2}, 1.0f);
  EXPECT_THROW((void)im2col(input, 5, 1), std::invalid_argument);   // kernel too big
  EXPECT_THROW((void)im2col(input, 0, 0), std::invalid_argument);   // zero kernel
  const Tensor flat({2, 4}, 1.0f);
  EXPECT_THROW((void)im2col(flat, 3, 1), std::invalid_argument);    // not NCHW
  const Tensor cols({4, 9}, 1.0f);
  EXPECT_THROW((void)col2im(cols, {1, 1, 9, 9}, 3, 1), std::invalid_argument);
  EXPECT_THROW((void)col2im(cols, {1, 2}, 3, 1), std::invalid_argument);
}

TEST(MatmulAccumulate, AccumulatesAscendingKOnTopOfSeed) {
  std::mt19937_64 engine(31);
  const Tensor a = Tensor::randn({4, 40}, 1.0f, engine);
  const Tensor b = Tensor::randn({40, 5}, 1.0f, engine);
  Tensor c({4, 5}, 2.0f);
  matmul_accumulate(a, b, c);
  // Bitwise reference: scalar loop accumulating ascending-k on top of the
  // same seed value — the term order the im2col bias epilogue relies on.
  Tensor ref({4, 5}, 2.0f);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t p = 0; p < 40; ++p) {
      for (std::size_t j = 0; j < 5; ++j) {
        ref.at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
  for (std::size_t i = 0; i < c.numel(); ++i) {
    ASSERT_EQ(c[i], ref[i]) << "element " << i;
  }
  Tensor wrong({3, 5});
  EXPECT_THROW(matmul_accumulate(a, b, wrong), std::invalid_argument);
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 4}, std::vector<float>{1, 2, 3, 4, -1, 0, 1, 100});
  Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    float s = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) {
      s += p.at(i, j);
      EXPECT_GE(p.at(i, j), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(p.at(1, 3), 1.0f, 1e-5f);
}

TEST(Softmax, InvariantToShift) {
  Tensor a({1, 3}, std::vector<float>{1, 2, 3});
  Tensor b({1, 3}, std::vector<float>{101, 102, 103});
  Tensor pa = softmax_rows(a);
  Tensor pb = softmax_rows(b);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(pa.at(0, j), pb.at(0, j), 1e-6f);
  }
}

}  // namespace
}  // namespace neuspin::nn
