// Shared test helpers: finite-difference gradient checking for layers.
#pragma once

#include <cmath>
#include <functional>
#include <random>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace neuspin::testing {

/// Scalar loss used by gradient checks: L = sum(w_i * y_i) with fixed
/// pseudo-random weights, so every output element influences the loss.
class ProbeLoss {
 public:
  explicit ProbeLoss(const nn::Shape& output_shape, std::uint64_t seed = 1234) {
    std::mt19937_64 engine(seed);
    weights_ = nn::Tensor::uniform(output_shape, -1.0f, 1.0f, engine);
  }

  [[nodiscard]] float value(const nn::Tensor& y) const {
    float v = 0.0f;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      v += weights_[i] * y[i];
    }
    return v;
  }

  [[nodiscard]] nn::Tensor grad() const { return weights_; }

 private:
  nn::Tensor weights_;
};

/// Check the input gradient of `layer` against central finite differences.
/// The layer must be deterministic across repeated forwards in the mode
/// used (training == true here) — seed-dependent layers need their
/// stochasticity disabled or made repeatable before calling this.
inline void check_input_gradient(nn::Layer& layer, const nn::Tensor& input,
                                 float tolerance = 2e-2f, float epsilon = 1e-3f) {
  nn::Tensor y = layer.forward(input, true);
  ProbeLoss loss(y.shape());
  nn::Tensor analytic = layer.backward(loss.grad());

  for (std::size_t i = 0; i < input.numel(); i += std::max<std::size_t>(1, input.numel() / 24)) {
    nn::Tensor perturbed = input;
    perturbed[i] += epsilon;
    const float up = loss.value(layer.forward(perturbed, true));
    perturbed[i] -= 2.0f * epsilon;
    const float down = loss.value(layer.forward(perturbed, true));
    const float numeric = (up - down) / (2.0f * epsilon);
    EXPECT_NEAR(analytic[i], numeric, tolerance)
        << "input gradient mismatch at flat index " << i;
  }
  // Restore the cache for any follow-up backward calls.
  (void)layer.forward(input, true);
}

/// Check one parameter's gradient against central finite differences.
/// `param_index` selects from layer.parameters().
inline void check_param_gradient(nn::Layer& layer, const nn::Tensor& input,
                                 std::size_t param_index, float tolerance = 2e-2f,
                                 float epsilon = 1e-3f) {
  auto params = layer.parameters();
  ASSERT_LT(param_index, params.size());
  nn::Tensor& value = *params[param_index].value;
  nn::Tensor& grad = *params[param_index].grad;

  nn::Tensor y = layer.forward(input, true);
  ProbeLoss loss(y.shape());
  grad.fill(0.0f);
  (void)layer.backward(loss.grad());
  const nn::Tensor analytic = grad;

  for (std::size_t i = 0; i < value.numel();
       i += std::max<std::size_t>(1, value.numel() / 24)) {
    const float original = value[i];
    value[i] = original + epsilon;
    const float up = loss.value(layer.forward(input, true));
    value[i] = original - epsilon;
    const float down = loss.value(layer.forward(input, true));
    value[i] = original;
    const float numeric = (up - down) / (2.0f * epsilon);
    EXPECT_NEAR(analytic[i], numeric, tolerance)
        << "param " << param_index << " gradient mismatch at flat index " << i;
  }
  (void)layer.forward(input, true);
}

}  // namespace neuspin::testing
