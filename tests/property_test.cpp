// Property-based (parameterized) suites: invariants that must hold across
// whole parameter ranges, not just at hand-picked points.
#include <cmath>

#include <gtest/gtest.h>

#include "core/census.h"
#include "data/corruption.h"
#include "data/strokes.h"
#include "device/rng.h"
#include "device/switching.h"
#include "xbar/conv_tile.h"
#include "xbar/tile.h"

namespace neuspin {
namespace {

// ------------------------------------------------ switching invariants ----

class SwitchingPulse : public ::testing::TestWithParam<double> {};

TEST_P(SwitchingPulse, InverseIsConsistentAtEveryPulseWidth) {
  const device::SwitchingModel model{device::MtjParams{}};
  const double pulse = GetParam();
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    const double i = model.current_for_probability(p, pulse);
    EXPECT_GT(i, 0.0);
    EXPECT_NEAR(model.switching_probability(i, pulse), p, 1e-6)
        << "pulse=" << pulse << " p=" << p;
  }
}

TEST_P(SwitchingPulse, ProbabilityIsAValidCdfInCurrent) {
  const device::SwitchingModel model{device::MtjParams{}};
  const double pulse = GetParam();
  double prev = 0.0;
  for (double i = 1.0; i <= 200.0; i += 1.0) {
    const double p = model.switching_probability(i, pulse);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(p, prev - 1e-12) << "must be monotone at pulse=" << pulse;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(PulseWidths, SwitchingPulse,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 20.0));

// ------------------------------------------------------ RNG invariants ----

class RngDeltaShift : public ::testing::TestWithParam<double> {};

TEST_P(RngDeltaShift, RealizedProbabilityMovesOppositeToDelta) {
  // Calibration targets the nominal Delta; a shifted device realizes a
  // different probability, monotonically decreasing in Delta.
  device::SpinRngConfig config;
  config.target_probability = 0.5;
  config.delta_override = config.mtj.delta + GetParam();
  device::SpinRng shifted(config, 3);
  config.delta_override = 0.0;
  device::SpinRng nominal(config, 3);
  if (GetParam() > 0.0) {
    EXPECT_LT(shifted.realized_probability(), nominal.realized_probability());
  } else if (GetParam() < 0.0) {
    EXPECT_GT(shifted.realized_probability(), nominal.realized_probability());
  }
  EXPECT_GT(shifted.realized_probability(), 0.0);
  EXPECT_LT(shifted.realized_probability(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(DeltaShifts, RngDeltaShift,
                         ::testing::Values(-8.0, -3.0, 0.0, 3.0, 8.0));

// ----------------------------------------------------- tile invariants ----

struct TileGeometry {
  std::size_t in;
  std::size_t out;
};

class TileShapes : public ::testing::TestWithParam<TileGeometry> {};

TEST_P(TileShapes, MatchesSignedPopcountAcrossGeometries) {
  const auto [in, out] = GetParam();
  std::mt19937_64 engine(in * 131 + out);
  std::vector<float> weights(in * out);
  for (auto& w : weights) {
    w = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::vector<float> scales(out, 1.0f);
  xbar::TileConfig config;
  config.adc_bits = 12;
  config.crossbar.wire_resistance = 0.0;
  xbar::DenseTile tile(config, in, out, weights, scales, 17);

  std::vector<float> input(in);
  for (auto& x : input) {
    x = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::mt19937_64 fwd(1);
  const auto hw = tile.forward(input, nullptr, fwd);
  for (std::size_t c = 0; c < out; ++c) {
    float expected = 0.0f;
    for (std::size_t r = 0; r < in; ++r) {
      expected += input[r] * weights[r * out + c];
    }
    // One ADC step of tolerance per row block.
    const float tol =
        2.0f * static_cast<float>(std::min<std::size_t>(in, config.max_rows)) /
        4096.0f * static_cast<float>((in + config.max_rows - 1) / config.max_rows) +
        0.2f;
    EXPECT_NEAR(hw[c], expected, tol) << "geometry " << in << "x" << out;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, TileShapes,
                         ::testing::Values(TileGeometry{8, 4}, TileGeometry{64, 16},
                                           TileGeometry{128, 32}, TileGeometry{200, 8},
                                           TileGeometry{300, 12}));

TEST(ConvTileProperty, MatchesDirectConvolution) {
  const std::size_t in_ch = 2;
  const std::size_t out_ch = 3;
  const std::size_t k = 3;
  std::mt19937_64 engine(7);
  std::vector<float> weights(out_ch * in_ch * k * k);
  for (auto& w : weights) {
    w = (engine() & 1) ? 1.0f : -1.0f;
  }
  std::vector<float> scales(out_ch, 1.0f);
  xbar::TileConfig config;
  config.adc_bits = 12;
  config.crossbar.wire_resistance = 0.0;
  xbar::ConvTile conv(config, in_ch, out_ch, k, 1, weights, scales, 23);

  nn::Tensor input({1, in_ch, 6, 6});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = (engine() & 1) ? 1.0f : -1.0f;
  }
  const nn::Tensor hw = conv.forward(input);
  ASSERT_EQ(hw.shape(), (nn::Shape{1, out_ch, 6, 6}));

  // Direct reference convolution.
  for (std::size_t oc = 0; oc < out_ch; ++oc) {
    for (std::size_t y = 0; y < 6; ++y) {
      for (std::size_t x = 0; x < 6; ++x) {
        float expected = 0.0f;
        for (std::size_t ic = 0; ic < in_ch; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(y + ky) - 1;
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(x + kx) - 1;
              if (iy < 0 || ix < 0 || iy >= 6 || ix >= 6) {
                continue;
              }
              expected += input.at4(0, ic, static_cast<std::size_t>(iy),
                                    static_cast<std::size_t>(ix)) *
                          weights[((oc * in_ch + ic) * k + ky) * k + kx];
            }
          }
        }
        EXPECT_NEAR(hw.at4(0, oc, y, x), expected, 0.3f)
            << "pixel (" << y << "," << x << ") channel " << oc;
      }
    }
  }
}

TEST(ConvTileProperty, LedgerChargesPerPixel) {
  xbar::TileConfig config;
  std::vector<float> weights(4 * 1 * 9, 1.0f);
  std::vector<float> scales(4, 1.0f);
  xbar::ConvTile conv(config, 1, 4, 3, 1, weights, scales, 29);
  nn::Tensor input({1, 1, 5, 5}, 1.0f);
  energy::EnergyLedger ledger;
  (void)conv.forward(input, &ledger);
  // 25 output pixels, one ADC conversion per column per pixel.
  EXPECT_EQ(ledger.count(energy::Component::kAdcConversion), 25u * 4u);
}

// --------------------------------------------------- census invariants ----

class CensusPasses : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CensusPasses, EnergyScalesLinearlyInMcPasses) {
  const core::ArchSpec arch = core::small_cnn_arch();
  core::CensusConfig config;
  config.mc_passes = GetParam();
  const double e_t = core::inference_census(arch, core::Method::kSpinDrop, config)
                         .total_energy();
  config.mc_passes = 2 * GetParam();
  const double e_2t = core::inference_census(arch, core::Method::kSpinDrop, config)
                          .total_energy();
  EXPECT_NEAR(e_2t / e_t, 2.0, 1e-6)
      << "every counted event is per-pass, so energy must be linear in T";
}

INSTANTIATE_TEST_SUITE_P(McBudgets, CensusPasses, ::testing::Values(1u, 5u, 20u, 50u));

TEST(CensusProperty, SenseAmpNeverBeatsDeterministicPerPass) {
  // Per-pass energy of any Bayesian method is >= the deterministic pass:
  // the Bayesian machinery only adds events.
  const core::ArchSpec arch = core::mlp_arch();
  core::CensusConfig config;
  config.mc_passes = 1;
  const double det = core::inference_census(arch, core::Method::kDeterministic, config)
                         .total_energy();
  for (auto method : {core::Method::kSpinDrop, core::Method::kSpatialSpinDrop,
                      core::Method::kAffineDropout, core::Method::kTraditionalVi}) {
    const double e = core::inference_census(arch, method, config).total_energy();
    EXPECT_GE(e, det) << core::method_name(method);
  }
}

// ----------------------------------------------- corruption invariants ----

class CorruptionKinds : public ::testing::TestWithParam<data::CorruptionKind> {};

TEST_P(CorruptionKinds, DeterministicPerSeedAndLabelPreserving) {
  data::StrokeConfig sc;
  sc.samples_per_class = 3;
  const nn::Dataset clean = data::make_stroke_digits(sc, 31);
  const nn::Dataset a = data::corrupt(clean, GetParam(), 0.7f, 5);
  const nn::Dataset b = data::corrupt(clean, GetParam(), 0.7f, 5);
  EXPECT_EQ(a.labels, clean.labels);
  for (std::size_t i = 0; i < a.inputs.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.inputs[i], b.inputs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CorruptionKinds,
                         ::testing::ValuesIn(data::all_corruptions()),
                         [](const ::testing::TestParamInfo<data::CorruptionKind>& info) {
                           return data::corruption_name(info.param);
                         });

// ------------------------------------------------- standardization ----

TEST(Standardization, EverySampleHasZeroMeanUnitVariance) {
  data::StrokeConfig sc;
  sc.samples_per_class = 4;
  const nn::Dataset std_data =
      data::standardize_per_sample(data::make_stroke_digits(sc, 37));
  const std::size_t per = std_data.inputs.numel() / std_data.size();
  for (std::size_t i = 0; i < std_data.size(); ++i) {
    float mean = 0.0f;
    float var = 0.0f;
    for (std::size_t p = 0; p < per; ++p) {
      mean += std_data.inputs[i * per + p];
    }
    mean /= static_cast<float>(per);
    for (std::size_t p = 0; p < per; ++p) {
      const float d = std_data.inputs[i * per + p] - mean;
      var += d * d;
    }
    var /= static_cast<float>(per);
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

}  // namespace
}  // namespace neuspin
