// Unit tests for the architecture census: the counting rules behind
// Table I and the paper's x-factor claims.
#include <gtest/gtest.h>

#include "core/census.h"

namespace neuspin::core {
namespace {

TEST(LayerSpec, DenseGeometry) {
  const LayerSpec l = LayerSpec::dense(256, 128, true);
  EXPECT_EQ(l.mvm_rows(), 256u);
  EXPECT_EQ(l.mvm_cols(), 128u);
  EXPECT_EQ(l.mvm_count(), 1u);
  EXPECT_EQ(l.neurons(), 128u);
  EXPECT_EQ(l.weights(), 256u * 128u);
  EXPECT_EQ(l.feature_maps(), 1u);
}

TEST(LayerSpec, ConvGeometry) {
  const LayerSpec l = LayerSpec::conv(8, 16, 3, 8, 8);
  EXPECT_EQ(l.mvm_rows(), 72u);
  EXPECT_EQ(l.mvm_cols(), 16u);
  EXPECT_EQ(l.mvm_count(), 64u);
  EXPECT_EQ(l.neurons(), 1024u);
  EXPECT_EQ(l.feature_maps(), 16u);
  EXPECT_EQ(l.weights(), 72u * 16u);
}

TEST(ArchSpec, CnnTotals) {
  const ArchSpec arch = small_cnn_arch();
  EXPECT_EQ(arch.layers.size(), 4u);
  EXPECT_EQ(arch.hidden_layer_count(), 3u);
  // conv1: 8*16*16=2048; conv2: 16*8*8=1024; dense: 64 -> 3136 neurons.
  EXPECT_EQ(arch.total_neurons(), 3136u);
  EXPECT_EQ(arch.total_feature_maps(), 8u + 16u + 1u);
}

TEST(DropoutModules, SpinDropNeedsOrdersOfMagnitudeMore) {
  const ArchSpec arch = small_cnn_arch();
  const std::size_t spindrop = dropout_module_count(arch, Method::kSpinDrop);
  const std::size_t spatial = dropout_module_count(arch, Method::kSpatialSpinDrop);
  const std::size_t scale = dropout_module_count(arch, Method::kSpinScaleDrop);
  EXPECT_GT(spindrop, 8 * spatial)
      << "the paper's ~9x module-reduction claim (C2) must hold in shape";
  EXPECT_EQ(scale, 3u) << "exactly one scale-dropout module per hidden layer";
  EXPECT_EQ(dropout_module_count(arch, Method::kDeterministic), 0u);
}

TEST(RngBits, OrderingFollowsGranularity) {
  const ArchSpec arch = small_cnn_arch();
  const CensusConfig config;
  const auto spindrop = rng_bits_per_pass(arch, Method::kSpinDrop, config);
  const auto spatial = rng_bits_per_pass(arch, Method::kSpatialSpinDrop, config);
  const auto scale = rng_bits_per_pass(arch, Method::kSpinScaleDrop, config);
  const auto affine = rng_bits_per_pass(arch, Method::kAffineDropout, config);
  const auto traditional = rng_bits_per_pass(arch, Method::kTraditionalVi, config);
  EXPECT_EQ(spindrop, arch.total_neurons());
  EXPECT_EQ(spatial, 8u + 16u + 1u);
  EXPECT_EQ(scale, 3u);
  EXPECT_EQ(affine, 6u);
  EXPECT_GT(traditional, spindrop)
      << "per-weight Gaussian sampling dwarfs even neuron-wise dropout";
}

TEST(InferenceCensus, SharedMacPathIdenticalAcrossMethods) {
  const ArchSpec arch = mlp_arch();
  const CensusConfig config;
  const auto a = inference_census(arch, Method::kSpinDrop, config);
  const auto b = inference_census(arch, Method::kSpatialSpinDrop, config);
  EXPECT_EQ(a.count(energy::Component::kXbarCellRead),
            b.count(energy::Component::kXbarCellRead))
      << "the analog MAC work is method-independent";
  EXPECT_EQ(a.count(energy::Component::kWordlineActivation),
            b.count(energy::Component::kWordlineActivation));
}

TEST(InferenceCensus, SenseAmpArchitectureSkipsHiddenAdc) {
  const ArchSpec arch = small_cnn_arch();
  const CensusConfig config;
  const auto adc_arch = inference_census(arch, Method::kSpinDrop, config);
  const auto sa_arch = inference_census(arch, Method::kSpinScaleDrop, config);
  EXPECT_GT(adc_arch.count(energy::Component::kAdcConversion),
            10 * sa_arch.count(energy::Component::kAdcConversion))
      << "binary-activation architectures only digitize the classifier layer";
  EXPECT_GT(sa_arch.count(energy::Component::kSenseAmp), 0u);
}

TEST(InferenceCensus, Table1EnergyOrdering) {
  const ArchSpec arch = small_cnn_arch();
  const CensusConfig config;
  const double spindrop =
      inference_census(arch, Method::kSpinDrop, config).total_energy();
  const double spatial =
      inference_census(arch, Method::kSpatialSpinDrop, config).total_energy();
  const double scale =
      inference_census(arch, Method::kSpinScaleDrop, config).total_energy();
  const double subset = inference_census(arch, Method::kSubsetVi, config).total_energy();
  const double spinbayes =
      inference_census(arch, Method::kSpinBayes, config).total_energy();
  // Paper Table I shape: SpinDrop is by far the most expensive, Spatial
  // second, and the scale-based methods form the cheap cluster with
  // ScaleDrop cheapest. (The two adjacent middle rows, SubSet and
  // SpinBayes, sit within ~1.5x of each other in the paper and swap under
  // our unified backbone; see EXPERIMENTS.md.)
  EXPECT_GT(spindrop, 2.0 * spatial);
  EXPECT_GT(spatial, subset);
  EXPECT_GT(spatial, spinbayes);
  EXPECT_GT(subset, scale);
  EXPECT_GT(spinbayes, scale);
}

TEST(InferenceCensus, DeterministicRunsOnePass) {
  const ArchSpec arch = mlp_arch();
  CensusConfig config;
  config.mc_passes = 20;
  const auto det = inference_census(arch, Method::kDeterministic, config);
  const auto bayes = inference_census(arch, Method::kSpinDrop, config);
  EXPECT_NEAR(static_cast<double>(bayes.count(energy::Component::kXbarCellRead)),
              20.0 * static_cast<double>(det.count(energy::Component::kXbarCellRead)),
              1.0);
}

TEST(InferenceCensus, TraditionalViIsByFarTheMostExpensive) {
  const ArchSpec arch = small_cnn_arch();
  const CensusConfig config;
  const double traditional =
      inference_census(arch, Method::kTraditionalVi, config).total_energy();
  const double subset = inference_census(arch, Method::kSubsetVi, config).total_energy();
  EXPECT_GT(traditional / subset, 20.0)
      << "shape of the paper's 70x power claim (C5)";
}

TEST(StorageCensus, SubsetViMassivelySmallerThanTraditional) {
  const ArchSpec arch = small_cnn_arch();
  const CensusConfig config;
  const auto subset = storage_census(arch, Method::kSubsetVi, config);
  const auto traditional = storage_census(arch, Method::kTraditionalVi, config);
  const double ratio = static_cast<double>(traditional.total_bits()) /
                       static_cast<double>(subset.total_bits());
  EXPECT_GT(ratio, 30.0) << "shape of the paper's 158.7x memory claim (C5)";
}

TEST(StorageCensus, SpinBayesStoresQuantizedInstances) {
  const ArchSpec arch = mlp_arch();
  CensusConfig config;
  config.spinbayes_instances = 8;
  const auto fp = storage_census(arch, Method::kSpinBayes, config);
  EXPECT_EQ(fp.variational_bits, 0u);
  EXPECT_GT(fp.other_bits, 0u);
  // 8 instances x scale entries x 3 bits (8-level cells).
  EXPECT_EQ(fp.other_bits, 8u * arch.total_scale_entries() * 3u);
}

TEST(InferenceCensus, RejectsBadConfig) {
  CensusConfig config;
  config.mc_passes = 0;
  EXPECT_THROW((void)inference_census(mlp_arch(), Method::kSpinDrop, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace neuspin::core
