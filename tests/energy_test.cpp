// Unit tests for the energy/memory accounting substrate.
#include <gtest/gtest.h>

#include "energy/accountant.h"
#include "energy/memory.h"
#include "energy/params.h"

namespace neuspin::energy {
namespace {

TEST(EnergyParams, AdcEnergyDoublesPerBit) {
  const EnergyParams params;
  EXPECT_DOUBLE_EQ(params.adc_conversion(8), params.adc_8bit);
  EXPECT_DOUBLE_EQ(params.adc_conversion(9), 2.0 * params.adc_8bit);
  EXPECT_DOUBLE_EQ(params.adc_conversion(7), 0.5 * params.adc_8bit);
  EXPECT_DOUBLE_EQ(params.adc_conversion(4), params.adc_8bit / 16.0);
}

TEST(EnergyParams, AdcRejectsBadResolution) {
  const EnergyParams params;
  EXPECT_THROW((void)params.adc_conversion(0), std::invalid_argument);
  EXPECT_THROW((void)params.adc_conversion(17), std::invalid_argument);
}

TEST(EnergyLedger, CountsAndPrices) {
  EnergyLedger ledger(8);
  ledger.add(Component::kAdcConversion, 10);
  ledger.add(Component::kRngDropoutCycle, 4);
  const EnergyParams params;
  EXPECT_DOUBLE_EQ(ledger.component_energy(Component::kAdcConversion, params),
                   10.0 * params.adc_8bit);
  EXPECT_DOUBLE_EQ(ledger.component_energy(Component::kRngDropoutCycle, params),
                   4.0 * params.rng_dropout_cycle);
  EXPECT_DOUBLE_EQ(ledger.total_energy(params),
                   10.0 * params.adc_8bit + 4.0 * params.rng_dropout_cycle);
}

TEST(EnergyLedger, AdcResolutionAffectsPrice) {
  EnergyLedger fine(10);
  EnergyLedger coarse(4);
  fine.add(Component::kAdcConversion, 1);
  coarse.add(Component::kAdcConversion, 1);
  EXPECT_GT(fine.total_energy(), coarse.total_energy());
}

TEST(EnergyLedger, MergeAndScale) {
  EnergyLedger a;
  a.add(Component::kSenseAmp, 5);
  EnergyLedger b;
  b.add(Component::kSenseAmp, 3);
  b.add(Component::kDigitalAdd, 2);
  a += b;
  EXPECT_EQ(a.count(Component::kSenseAmp), 8u);
  EXPECT_EQ(a.count(Component::kDigitalAdd), 2u);
  a *= 10;
  EXPECT_EQ(a.count(Component::kSenseAmp), 80u);
}

TEST(EnergyLedger, ResetClears) {
  EnergyLedger ledger;
  ledger.add(Component::kMtjWrite, 7);
  ledger.reset();
  EXPECT_EQ(ledger.count(Component::kMtjWrite), 0u);
  EXPECT_DOUBLE_EQ(ledger.total_energy(), 0.0);
}

TEST(EnergyLedger, LatencyAccounting) {
  EnergyLedger ledger;
  ledger.add(Component::kWordlineActivation, 2);
  ledger.add(Component::kAdcConversion, 3);
  const EnergyParams params;
  EXPECT_DOUBLE_EQ(ledger.total_latency(params),
                   2.0 * params.t_xbar_read + 3.0 * params.t_adc);
}

TEST(EnergyLedger, ReportMentionsEveryActiveComponent) {
  EnergyLedger ledger;
  ledger.add(Component::kSramReadWord, 1);
  ledger.add(Component::kRngDropoutCycle, 2);
  const std::string report = ledger.report(default_energy_params());
  EXPECT_NE(report.find("sram_read_word"), std::string::npos);
  EXPECT_NE(report.find("rng_dropout_cycle"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(EnergyLedger, RejectsBadAdcBits) {
  EXPECT_THROW(EnergyLedger(0), std::invalid_argument);
  EXPECT_THROW(EnergyLedger(20), std::invalid_argument);
}

TEST(Memory, BinaryIsOneBitPerWeight) {
  ModelShape shape;
  shape.weight_count = 1000;
  const auto fp = footprint(shape, StorageScheme::kBinaryPoint);
  EXPECT_EQ(fp.weight_bits, 1000u);
}

TEST(Memory, PerWeightViIs64xBinary) {
  ModelShape shape;
  shape.weight_count = 1000;
  const auto binary = footprint(shape, StorageScheme::kBinaryPoint);
  const auto vi = footprint(shape, StorageScheme::kPerWeightGaussianVi);
  EXPECT_EQ(vi.total_bits(), 64u * binary.total_bits())
      << "mu+sigma at fp32 costs 64 bits per weight vs 1 bit binary";
}

TEST(Memory, EnsembleScalesWithMembers) {
  ModelShape shape;
  shape.weight_count = 500;
  shape.ensemble_members = 5;
  const auto ens = footprint(shape, StorageScheme::kEnsemble);
  EXPECT_EQ(ens.weight_bits, 500u * 32u * 5u);
}

TEST(Memory, SubsetViDominatedByBinaryWeights) {
  ModelShape shape;
  shape.weight_count = 100000;
  shape.scale_entries = 100;  // scales are ~0.1% of weights
  const auto subset = footprint(shape, StorageScheme::kSubsetVi);
  const auto traditional = footprint(shape, StorageScheme::kPerWeightGaussianVi);
  const double ratio = static_cast<double>(traditional.total_bits()) /
                       static_cast<double>(subset.total_bits());
  EXPECT_GT(ratio, 50.0) << "the paper's ~158.7x storage claim's shape: "
                            "subset-VI storage is orders of magnitude smaller";
}

TEST(Memory, ReportIsHumanReadable) {
  ModelShape shape;
  shape.weight_count = 64;
  const auto fp = footprint(shape, StorageScheme::kBinaryPoint);
  EXPECT_NE(fp.report().find("KiB"), std::string::npos);
}

TEST(Memory, SchemeNamesAreUnique) {
  EXPECT_NE(storage_scheme_name(StorageScheme::kBinaryPoint),
            storage_scheme_name(StorageScheme::kSubsetVi));
  EXPECT_NE(storage_scheme_name(StorageScheme::kEnsemble),
            storage_scheme_name(StorageScheme::kPerWeightGaussianVi));
}

}  // namespace
}  // namespace neuspin::energy
