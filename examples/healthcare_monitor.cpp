// Healthcare wearable scenario (the paper's IoT motivation): a vitals
// classifier running on a spintronic BayNN flags out-of-distribution
// readings instead of silently misclassifying them.
//
// Synthetic "vitals" are 8-dimensional Gaussian clusters standing in for
// activity/physiology regimes (resting, walking, running, sleeping). OOD
// events are drawn from a shifted distribution (sensor fault / unseen
// condition); the monitor escalates any reading whose predictive entropy
// exceeds the calibrated threshold.
#include <algorithm>
#include <cstdio>

#include "core/models.h"
#include "core/pipeline.h"
#include "data/clusters.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin healthcare monitor: uncertainty-gated vitals classification\n\n");

  // Four physiological regimes in an 8-D feature space.
  data::ClusterConfig cc;
  cc.classes = 4;
  cc.dimensions = 8;
  cc.samples_per_class = 250;
  cc.center_spread = 4.0f;
  cc.cluster_sigma = 0.9f;
  const nn::Dataset all = data::make_gaussian_clusters(cc, 7);
  nn::Dataset train;
  nn::Dataset test;
  {
    auto [head_x, head_y] = all.batch(0, 800);
    train = {std::move(head_x), std::move(head_y)};
    auto [tail_x, tail_y] = all.batch(800, all.size());
    test = {std::move(tail_x), std::move(tail_y)};
  }

  // Sub-set VI model: binary weights + Bayesian scale vector — the method
  // the paper recommends for the tightest memory budgets (§III-B.1).
  core::ModelConfig config;
  config.method = core::Method::kSubsetVi;
  core::BuiltModel model = core::make_binary_mlp(config, 8, {32, 32}, 4);
  core::FitConfig fit_config;
  fit_config.epochs = 10;
  fit_config.kl_weight = 1e-4f;
  (void)core::fit(model, train, fit_config);

  const core::EvalResult ev = core::evaluate(model, test, 20);
  std::printf("regime classification: acc %.2f%%  NLL %.3f  ECE %.3f\n\n",
              100.0f * ev.accuracy, ev.nll, ev.ece);

  // OOD events: a fifth, unseen regime far from the training clusters
  // (e.g. a sensor detaching or an arrhythmia-like signature).
  data::ClusterConfig anomaly_cfg = cc;
  anomaly_cfg.classes = 1;
  anomaly_cfg.samples_per_class = 200;
  anomaly_cfg.center_spread = 14.0f;  // far outside the known regimes
  anomaly_cfg.cluster_sigma = 2.0f;   // erratic, high-variance readings
  const nn::Dataset anomalies = data::make_gaussian_clusters(anomaly_cfg, 991);

  const core::OodResult ood = core::evaluate_ood(model, test, anomalies, 20);
  std::printf("anomaly flagging: AUROC %.3f, detection rate at 95%% specificity "
              "%.1f%%\n",
              ood.auroc, 100.0f * ood.detection_rate);

  // Show the triage policy in action on a handful of readings.
  const std::vector<float> id_scores = core::entropy_scores(model, test, 20);
  std::vector<float> sorted = id_scores;
  std::sort(sorted.begin(), sorted.end());
  const float threshold = sorted[static_cast<std::size_t>(0.95 * sorted.size())];
  std::printf("entropy escalation threshold (95th percentile of in-distribution): "
              "%.3f nats\n\n",
              threshold);

  const std::vector<float> anomaly_scores = core::entropy_scores(model, anomalies, 20);
  std::printf("sample triage:\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  normal reading  %zu: entropy %.3f -> %s\n", i, id_scores[i],
                id_scores[i] > threshold ? "ESCALATE to clinician" : "auto-log");
  }
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  anomalous event %zu: entropy %.3f -> %s\n", i, anomaly_scores[i],
                anomaly_scores[i] > threshold ? "ESCALATE to clinician" : "auto-log");
  }
  return 0;
}
