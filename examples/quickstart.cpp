// Quickstart: train a SpinDrop binary Bayesian NN, map it onto simulated
// SOT-MRAM crossbar tiles, and run uncertainty-aware inference — the whole
// NeuSpin pipeline in ~80 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/hw_model.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin quickstart: SpinDrop BayNN on spintronic CIM\n\n");

  // 1. Data: procedural stroke digits (the offline stand-in for MNIST),
  //    instance-standardized as the edge pipeline would.
  data::StrokeConfig sc;
  sc.samples_per_class = 100;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 1));
  sc.samples_per_class = 30;
  const nn::Dataset test =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 2));

  // 2. Model: binary MLP with per-neuron SpinDrop modules.
  core::ModelConfig config;
  config.method = core::Method::kSpinDrop;
  config.dropout_p = 0.15;
  core::BuiltModel model = core::make_binary_mlp(config, 256, {128, 128}, 10);

  // 3. Train in software (straight-through-estimator binarization).
  core::FitConfig fit_config;
  fit_config.epochs = 7;
  fit_config.verbose = true;
  const float train_acc = core::fit(model, train, fit_config);
  std::printf("\nfinal train accuracy: %.2f%%\n", 100.0f * train_acc);

  // 4. Bayesian inference in software: T=20 stochastic passes.
  const core::EvalResult sw = core::evaluate(model, test, 20);
  std::printf("software Bayesian eval: acc %.2f%%  NLL %.3f  ECE %.3f  "
              "mean entropy %.3f nats\n",
              100.0f * sw.accuracy, sw.nll, sw.ece, sw.mean_entropy);

  // 5. Deploy onto crossbar tiles: exact electrical simulation with MTJ
  //    variability, per-neuron stochastic dropout modules and an energy
  //    ledger recording every chargeable event.
  xbar::TileConfig tile_config;
  tile_config.variability.resistance_sigma = 0.05;  // 5% device variation
  core::TiledMlp hardware(model.net, tile_config, 42);

  energy::EnergyLedger ledger;
  auto [probe_inputs, probe_labels] = test.batch(0, 100);
  std::size_t correct = 0;
  const std::size_t mc_passes = 20;
  for (std::size_t i = 0; i < 100; ++i) {
    auto [x, y] = test.batch(i, i + 1);
    // Monte-Carlo over hardware dropout decisions.
    std::vector<double> mean_logits(10, 0.0);
    for (std::size_t t = 0; t < mc_passes; ++t) {
      const nn::Tensor logits = hardware.forward_spindrop(x, 0.15, &ledger);
      for (std::size_t c = 0; c < 10; ++c) {
        mean_logits[c] += logits.at(0, c) / static_cast<double>(mc_passes);
      }
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < 10; ++c) {
      if (mean_logits[c] > mean_logits[best]) {
        best = c;
      }
    }
    if (best == y[0]) {
      ++correct;
    }
  }
  std::printf("\ncrossbar-tile Bayesian eval (100 samples, 5%% device variation): "
              "acc %.1f%%\n",
              static_cast<double>(correct));
  std::printf("hardware energy for those inferences:\n%s",
              ledger.report(energy::default_energy_params()).c_str());
  std::printf("\nper-image energy: %.3f uJ\n",
              energy::to_microjoule(ledger.total_energy()) / 100.0);
  return 0;
}
