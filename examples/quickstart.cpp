// Quickstart: train a SpinDrop binary Bayesian NN, map it onto simulated
// SOT-MRAM crossbar tiles, and run uncertainty-aware inference — the whole
// NeuSpin pipeline in ~80 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <chrono>
#include <cstdio>

#include "core/hw_model.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin quickstart: SpinDrop BayNN on spintronic CIM\n\n");

  // 1. Data: procedural stroke digits (the offline stand-in for MNIST),
  //    instance-standardized as the edge pipeline would.
  data::StrokeConfig sc;
  sc.samples_per_class = 100;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 1));
  sc.samples_per_class = 30;
  const nn::Dataset test =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 2));

  // 2. Model: binary MLP with per-neuron SpinDrop modules.
  core::ModelConfig config;
  config.method = core::Method::kSpinDrop;
  config.dropout_p = 0.15;
  core::BuiltModel model = core::make_binary_mlp(config, 256, {128, 128}, 10);

  // 3. Train in software (straight-through-estimator binarization).
  core::FitConfig fit_config;
  fit_config.epochs = 7;
  fit_config.verbose = true;
  const float train_acc = core::fit(model, train, fit_config);
  std::printf("\nfinal train accuracy: %.2f%%\n", 100.0f * train_acc);

  // 4. Bayesian inference in software: T=20 stochastic passes.
  const core::EvalResult sw = core::evaluate(model, test, 20);
  std::printf("software Bayesian eval: acc %.2f%%  NLL %.3f  ECE %.3f  "
              "mean entropy %.3f nats\n",
              100.0f * sw.accuracy, sw.nll, sw.ece, sw.mean_entropy);

  // 5. Deploy onto crossbar tiles: exact electrical simulation with MTJ
  //    variability, per-neuron stochastic dropout modules and an energy
  //    ledger recording every chargeable event. The per-sample Monte-Carlo
  //    loop fans out across one TiledMlp replica per hardware thread;
  //    results are bitwise identical for any thread count.
  xbar::TileConfig tile_config;
  tile_config.variability.resistance_sigma = 0.05;  // 5% device variation
  core::TiledEvalOptions hw_opts;
  hw_opts.mc_samples = 20;
  hw_opts.dropout_p = 0.15;
  core::TiledMcEvaluator hardware(model.net, tile_config, 42, hw_opts);

  energy::EnergyLedger ledger;
  auto [probe_inputs, probe_labels] = test.batch(0, 100);
  const auto hw_begin = std::chrono::steady_clock::now();
  const core::Prediction pred = hardware.predict(probe_inputs, &ledger);
  const auto hw_end = std::chrono::steady_clock::now();
  const std::vector<std::size_t> predicted = pred.predicted_class();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == probe_labels[i]) {
      ++correct;
    }
  }
  const double hw_seconds =
      std::chrono::duration<double>(hw_end - hw_begin).count();
  std::printf("\ncrossbar-tile Bayesian eval (100 samples, 5%% device variation): "
              "acc %.1f%%  (%zu replicas, %.2f s)\n",
              static_cast<double>(correct), hardware.replica_count(), hw_seconds);
  std::printf("hardware energy for those inferences:\n%s",
              ledger.report(energy::default_energy_params()).c_str());
  std::printf("\nper-image energy: %.3f uJ\n",
              energy::to_microjoule(ledger.total_energy()) / 100.0);
  return 0;
}
