// Automotive scenario (the paper's safety-critical motivation): a sign
// classifier on faulty CIM hardware. The self-healing inverted-norm +
// affine-dropout model keeps working as stuck-at defects accumulate in the
// crossbars, while the plain deterministic BNN degrades — and the Bayesian
// model *knows* when conditions (fog, motion blur) make it unreliable.
#include <cstdio>

#include "core/hw_model.h"
#include "core/models.h"
#include "core/pipeline.h"
#include "data/corruption.h"
#include "data/strokes.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin drive scene: self-healing classification on faulty hardware\n\n");

  data::StrokeConfig sc;  // stroke digits stand in for sign classes
  sc.samples_per_class = 120;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 3));
  sc.samples_per_class = 40;
  const nn::Dataset test_img = data::make_stroke_digits(sc, 4);
  const nn::Dataset test =
      data::standardize_per_sample(data::flatten_dataset(test_img));

  auto train_model = [&](core::Method method) {
    core::ModelConfig config;
    config.method = method;
    config.dropout_p = 0.15;
    core::BuiltModel model = core::make_binary_mlp(config, 256, {128, 128}, 10);
    core::FitConfig fit_config;
    fit_config.epochs = 7;
    (void)core::fit(model, train, fit_config);
    return model;
  };

  // --- aging hardware: stuck-at defects accumulate over the lifetime ---
  std::printf("accuracy vs accumulated stuck-at weight defects:\n");
  std::printf("  %-12s %16s %22s\n", "defect rate", "plain BNN [%]",
              "self-healing BayNN [%]");
  for (float rate : {0.0f, 0.05f, 0.10f, 0.15f}) {
    core::BuiltModel plain = train_model(core::Method::kDeterministic);
    core::BuiltModel healing = train_model(core::Method::kAffineDropout);
    for (auto* inv : healing.inv_norm_layers) {
      inv->enable_self_healing(true);
    }
    if (rate > 0.0f) {
      (void)core::inject_weight_defects(plain.net, rate, 101);
      (void)core::inject_weight_defects(healing.net, rate, 101);
    }
    const float acc_plain = core::evaluate(plain, test, 1).accuracy;
    const float acc_heal = core::evaluate(healing, test, 20).accuracy;
    std::printf("  %-12.2f %16.2f %22.2f\n", rate, 100.0f * acc_plain,
                100.0f * acc_heal);
  }

  // --- degraded visibility: does the model know it is struggling? ---
  core::BuiltModel model = train_model(core::Method::kAffineDropout);
  std::printf("\nuncertainty tracks scene degradation (blur severity sweep):\n");
  std::printf("  %-10s %10s %16s\n", "severity", "acc [%]", "mean entropy");
  for (float severity : {0.0f, 0.3f, 0.6f, 1.0f}) {
    const nn::Dataset foggy = data::standardize_per_sample(data::flatten_dataset(
        data::corrupt(test_img, data::CorruptionKind::kBlur, severity, 5)));
    const core::EvalResult ev = core::evaluate(model, foggy, 20);
    std::printf("  %-10.1f %10.2f %16.3f\n", severity, 100.0f * ev.accuracy,
                ev.mean_entropy);
  }
  std::printf("\n-> entropy rises with degradation: the planner can slow down or "
              "hand over before accuracy silently collapses.\n");
  return 0;
}
