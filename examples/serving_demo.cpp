// Serving demo: the deployment story of the paper end to end.
//
// Train a SpinDrop Bayesian binary NN, stand up the serve::Runtime with a
// predictive-entropy abstention policy, then fire a request mix at it:
// clean in-distribution samples interleaved with uniform-noise OOD inputs.
// Every response carries class probabilities, uncertainty, an accept/
// abstain decision and per-request latency + energy attribution — the
// abstention column should light up on the OOD rows.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/serving_demo
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/models.h"
#include "core/pipeline.h"
#include "data/ood.h"
#include "data/strokes.h"
#include "serve/runtime.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin serving demo: uncertainty-aware inference runtime\n\n");

  // 1. Train a SpinDrop model on the procedural stroke digits.
  data::StrokeConfig sc;
  sc.samples_per_class = 80;
  const nn::Dataset train =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 1));
  sc.samples_per_class = 20;
  const nn::Dataset test =
      data::standardize_per_sample(data::make_stroke_digits_flat(sc, 2));

  core::ModelConfig mc;
  mc.method = core::Method::kSpinDrop;
  mc.dropout_p = 0.15;
  core::BuiltModel model = core::make_binary_mlp(mc, 256, {128, 128}, 10);
  core::FitConfig fit_config;
  fit_config.epochs = 8;
  const float train_acc = core::fit(model, train, fit_config);
  std::printf("trained: %.1f%% train accuracy\n", 100.0f * train_acc);

  // 2. Calibrate an abstention threshold from in-distribution entropy: the
  //    75th percentile of held-out scores — the most uncertain quartile of
  //    clean traffic is refused too, the price of catching OOD inputs with
  //    a small edge model (selective prediction trades coverage for risk).
  core::EvalOptions calib;
  calib.mc_samples = 16;
  std::vector<float> id_scores = core::entropy_scores(model, test, calib);
  std::sort(id_scores.begin(), id_scores.end());
  const float threshold = id_scores[id_scores.size() * 3 / 4];
  std::printf("abstention threshold: entropy > %.3f nats\n\n", threshold);

  // 3. Stand up the runtime: replicated workers, dynamic batching,
  //    max-entropy selective prediction.
  serve::RuntimeConfig config;
  config.workers = 4;
  config.mc_samples = 16;
  config.policy.kind = serve::PolicyKind::kMaxEntropy;
  config.policy.threshold = threshold;
  config.batcher.max_batch = 8;
  config.batcher.max_linger = std::chrono::microseconds(500);
  serve::Runtime runtime(model, config);

  // 4. Request mix: 8 clean test digits + 8 uniform-noise OOD inputs.
  const nn::Dataset ood_images = data::make_ood(
      data::make_stroke_digits(sc, 2), data::OodKind::kUniformNoise, 8, 99);
  const nn::Dataset ood = data::standardize_per_sample(nn::Dataset{
      ood_images.inputs.reshaped({ood_images.size(), 256}), ood_images.labels});

  struct Tagged {
    bool is_ood;
    std::size_t label;
    std::future<serve::ServedPrediction> future;
  };
  std::vector<Tagged> in_flight;
  for (std::size_t i = 0; i < 8; ++i) {
    const nn::Tensor x = test.batch(i, i + 1).first;
    in_flight.push_back({false, test.labels[i],
                         runtime.submit({x.data().begin(), x.data().end()})});
    const nn::Tensor n = ood.batch(i, i + 1).first;
    in_flight.push_back({true, 0,
                         runtime.submit({n.data().begin(), n.data().end()})});
  }

  std::printf("%4s %6s %6s %6s %9s %9s %9s %11s %10s\n", "req", "kind", "pred",
              "label", "conf", "H nats", "MI nats", "decision", "lat us");
  for (auto& t : in_flight) {
    const serve::ServedPrediction p = t.future.get();
    std::printf("%4llu %6s %6zu %6s %9.3f %9.3f %9.3f %11s %10.0f\n",
                static_cast<unsigned long long>(p.request_id),
                t.is_ood ? "ood" : "clean", p.predicted_class,
                t.is_ood ? "-" : std::to_string(t.label).c_str(), p.confidence,
                p.entropy, p.mutual_info, p.accepted ? "accept" : "ABSTAIN",
                p.total_latency_us);
  }

  const serve::RuntimeStats stats = runtime.stats();
  std::printf("\nserved %llu requests in %llu batches (avg batch %.1f): "
              "%llu accepted, %llu abstained\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_size,
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.abstained));
  std::printf("census-attributed energy: %.3f uJ per request\n",
              stats.requests == 0
                  ? 0.0
                  : stats.total_energy_pj * 1e-6 /
                        static_cast<double>(stats.requests));
  return 0;
}
