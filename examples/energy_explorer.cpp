// Energy/memory design-space explorer: sweep the Bayesian methods over
// model scales and Monte-Carlo budgets, printing the cost envelope an
// edge-AI architect would use to pick a configuration.
#include <cstdio>

#include "core/census.h"
#include "energy/accountant.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin energy explorer: method x scale x MC-budget cost envelope\n");

  const std::vector<std::pair<std::string, core::ArchSpec>> scales = {
      {"mlp-256-128-128-10", core::mlp_arch()},
      {"cnn-8-16-64-10", core::small_cnn_arch()},
  };
  const std::vector<core::Method> methods = {
      core::Method::kDeterministic, core::Method::kSpinDrop,
      core::Method::kSpatialSpinDrop, core::Method::kSpinScaleDrop,
      core::Method::kAffineDropout, core::Method::kSubsetVi,
      core::Method::kSpinBayes, core::Method::kTraditionalVi,
  };

  for (const auto& [name, arch] : scales) {
    std::printf("\n=== backbone: %s (%zu weights, %zu hidden neurons) ===\n",
                name.c_str(), arch.total_weights(), arch.total_neurons());
    std::printf("%-22s %8s %12s %12s %12s %12s\n", "method", "T", "energy[uJ]",
                "latency[us]", "RNG bits", "memory[KiB]");
    for (core::Method method : methods) {
      for (std::size_t t : {10u, 20u}) {
        core::CensusConfig config;
        config.mc_passes = t;
        const auto ledger = core::inference_census(arch, method, config);
        const auto& params = energy::default_energy_params();
        const auto memory = core::storage_census(arch, method, config);
        std::printf("%-22s %8zu %12.3f %12.1f %12llu %12.2f\n",
                    core::method_name(method).c_str(), t,
                    energy::to_microjoule(ledger.total_energy(params)),
                    ledger.total_latency(params) / 1000.0,
                    static_cast<unsigned long long>(
                        t * core::rng_bits_per_pass(arch, method, config)),
                    memory.total_kib());
        if (method == core::Method::kDeterministic) {
          break;  // point estimate: T is irrelevant, print once
        }
      }
    }
  }
  std::printf("\nReading guide: SpinDrop pays per-neuron RNG energy; the scale-based "
              "methods\n(ScaleDrop, SubSet-VI, SpinBayes) amortize stochasticity to "
              "per-layer cost, which\nis the core NeuSpin design argument "
              "(paper §III).\n");
  return 0;
}
