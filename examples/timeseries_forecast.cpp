// Wearable time-series forecasting with uncertainty bands: an LSTM with
// the paper's inverted-normalization + affine-dropout stage predicts the
// next sensor value and reports a Monte-Carlo confidence interval — the
// §III-A.4 LSTM experiment as a runnable application.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/affinedrop.h"
#include "data/timeseries.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/model.h"
#include "nn/optim.h"

int main() {
  using namespace neuspin;
  std::printf("NeuSpin time-series forecast: Bayesian LSTM with affine dropout\n\n");

  data::SeriesConfig sc;
  sc.length = 1400;
  const data::SeriesDataset series = data::make_series(sc, 17);
  const std::size_t train_n = 1000;

  // LSTM(1->24) -> InvertedNorm(24, affine dropout) -> Dense(24->1).
  std::mt19937_64 engine(18);
  nn::Sequential net;
  net.emplace<nn::Lstm>(1, 24, engine);
  core::AffineDropConfig ac;
  ac.features = 24;
  ac.dropout_p = 0.15;
  ac.seed = 19;
  auto& inv = net.emplace<core::InvertedNormLayer>(ac);
  net.emplace<nn::Dense>(24, 1, engine);

  nn::Adam optimizer(net.parameters(), 0.005f);
  const std::size_t batch = 32;
  const std::size_t window = series.inputs.dim(1);
  for (std::size_t epoch = 0; epoch < 12; ++epoch) {
    float epoch_loss = 0.0f;
    std::size_t steps = 0;
    for (std::size_t begin = 0; begin + batch <= train_n; begin += batch) {
      nn::Tensor x({batch, window, 1});
      nn::Tensor y({batch, 1});
      for (std::size_t i = 0; i < batch; ++i) {
        for (std::size_t t = 0; t < window; ++t) {
          x[i * window + t] = series.inputs[(begin + i) * window + t];
        }
        y[i] = series.targets[begin + i];
      }
      const nn::Tensor pred = net.forward(x, true);
      const nn::LossResult loss = nn::mean_squared_error(pred, y);
      (void)net.backward(loss.grad);
      optimizer.step();
      epoch_loss += loss.value;
      ++steps;
    }
    if (epoch % 3 == 0) {
      std::printf("epoch %2zu: train MSE %.5f\n", epoch,
                  epoch_loss / static_cast<float>(steps));
    }
  }

  // Held-out forecasting with Monte-Carlo uncertainty bands.
  inv.enable_mc(true);
  const std::size_t mc_passes = 30;
  const std::size_t show = 10;
  std::printf("\nheld-out forecasts (MC mean +/- 2 sigma):\n");
  std::printf("  %-6s %10s %22s %8s\n", "t", "truth", "prediction", "inside?");
  float se_sum = 0.0f;
  std::size_t covered = 0;
  const std::size_t test_n = series.size() - train_n;
  for (std::size_t i = 0; i < test_n; ++i) {
    const std::size_t idx = train_n + i;
    nn::Tensor x({1, window, 1});
    for (std::size_t t = 0; t < window; ++t) {
      x[t] = series.inputs[idx * window + t];
    }
    float mean = 0.0f;
    float sq = 0.0f;
    for (std::size_t p = 0; p < mc_passes; ++p) {
      const float pred = net.forward(x, false)[0];
      mean += pred;
      sq += pred * pred;
    }
    mean /= static_cast<float>(mc_passes);
    const float var = std::max(sq / static_cast<float>(mc_passes) - mean * mean, 0.0f);
    const float sigma = std::sqrt(var);
    const float truth = series.targets[idx];
    const bool inside = std::abs(truth - mean) <= 2.0f * sigma + 0.1f;
    covered += inside ? 1 : 0;
    se_sum += (truth - mean) * (truth - mean);
    if (i < show) {
      std::printf("  %-6zu %10.4f %10.4f +/- %-8.4f %8s\n", idx, truth, mean,
                  2.0f * sigma, inside ? "yes" : "NO");
    }
  }
  std::printf("\nheld-out RMSE: %.4f over %zu points; 2-sigma(+0.1) band coverage: "
              "%.1f%%\n",
              std::sqrt(se_sum / static_cast<float>(test_n)), test_n,
              100.0 * static_cast<double>(covered) / static_cast<double>(test_n));
  return 0;
}
